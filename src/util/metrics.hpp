// Global thread-safe metrics registry: named counters, gauges, and duration
// histograms. Every flow stage, the placer/router/optimizer inner loops and
// STA report into it; `flow::run_flow` snapshots it per stage to build the
// machine-readable StageReports, and `report::write_metrics_json` dumps the
// whole registry for interactive sessions (m3d_shell).
//
// Counters are monotonically accumulated doubles ("route.twopins"),
// gauges hold the last value set ("place.hpwl_um"), histograms collect
// individual samples and expose min/mean/max/p95 ("span.route").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace m3d::util {

struct HistStats {
  int64_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p95 = 0.0;
  double total = 0.0;
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& global();

  /// The calling thread's active sink: the registry most recently installed
  /// with ScopedMetricsSink on this thread, else global(). The convenience
  /// wrappers below report here, which lets concurrent flows collect their
  /// counters into private registries (merged back via merge_from) without
  /// interleaving each other's StageReports.
  static MetricsRegistry& current();

  void add_counter(const std::string& name, double delta = 1.0);
  void set_gauge(const std::string& name, double value);
  /// Records one sample into the named histogram (any unit; spans use ms).
  void observe(const std::string& name, double sample);

  /// Current value (0 if the name was never touched).
  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  /// Summary stats of a histogram (count 0 if absent). p95 is exact
  /// (nearest-rank over all recorded samples).
  HistStats histogram(const std::string& name) const;

  /// Snapshots for reporting; histogram samples are reduced to HistStats.
  std::map<std::string, double> counters() const;
  /// Counters whose name starts with `prefix` (e.g. "check." to collect all
  /// invariant-checker violation counts in one call).
  std::map<std::string, double> counters_with_prefix(
      const std::string& prefix) const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, HistStats> histograms() const;

  /// Drops every metric (tests and fresh interactive sessions).
  void reset();

  /// Folds `src` into this registry: counters add, gauges take src's value,
  /// histogram samples append. Used to publish a flow-local registry into
  /// its parent when a concurrent flow finishes.
  void merge_from(const MetricsRegistry& src);

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::vector<double>> samples_;
};

/// RAII redirection of this thread's metric reporting into `sink` (see
/// MetricsRegistry::current()). The exec pool captures the submitter's sink
/// at task-submit time and installs it on the worker, so metrics emitted on
/// pool threads land in the flow that spawned the work.
class ScopedMetricsSink {
 public:
  explicit ScopedMetricsSink(MetricsRegistry& sink);
  ~ScopedMetricsSink();
  ScopedMetricsSink(const ScopedMetricsSink&) = delete;
  ScopedMetricsSink& operator=(const ScopedMetricsSink&) = delete;

 private:
  MetricsRegistry* saved_;
};

/// Convenience wrappers over MetricsRegistry::current().
inline void count(const std::string& name, double delta = 1.0) {
  MetricsRegistry::current().add_counter(name, delta);
}
inline void set_gauge(const std::string& name, double value) {
  MetricsRegistry::current().set_gauge(name, value);
}
inline void observe(const std::string& name, double sample) {
  MetricsRegistry::current().observe(name, sample);
}

}  // namespace m3d::util
