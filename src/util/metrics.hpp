// Global thread-safe metrics registry: named counters, gauges, and duration
// histograms. Every flow stage, the placer/router/optimizer inner loops and
// STA report into it; `flow::run_flow` snapshots it per stage to build the
// machine-readable StageReports, and `report::write_metrics_json` dumps the
// whole registry for interactive sessions (m3d_shell).
//
// Counters are monotonically accumulated doubles ("route.twopins"),
// gauges hold the last value set ("place.hpwl_um"), histograms collect
// individual samples and expose min/mean/max/p95 ("span.route").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace m3d::util {

struct HistStats {
  int64_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p95 = 0.0;
  double total = 0.0;
};

class MetricsRegistry {
 public:
  /// The process-wide registry used by all instrumentation helpers below.
  static MetricsRegistry& global();

  void add_counter(const std::string& name, double delta = 1.0);
  void set_gauge(const std::string& name, double value);
  /// Records one sample into the named histogram (any unit; spans use ms).
  void observe(const std::string& name, double sample);

  /// Current value (0 if the name was never touched).
  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  /// Summary stats of a histogram (count 0 if absent). p95 is exact
  /// (nearest-rank over all recorded samples).
  HistStats histogram(const std::string& name) const;

  /// Snapshots for reporting; histogram samples are reduced to HistStats.
  std::map<std::string, double> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, HistStats> histograms() const;

  /// Drops every metric (tests and fresh interactive sessions).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::vector<double>> samples_;
};

/// Convenience wrappers over MetricsRegistry::global().
inline void count(const std::string& name, double delta = 1.0) {
  MetricsRegistry::global().add_counter(name, delta);
}
inline void set_gauge(const std::string& name, double value) {
  MetricsRegistry::global().set_gauge(name, value);
}
inline void observe(const std::string& name, double sample) {
  MetricsRegistry::global().observe(name, sample);
}

}  // namespace m3d::util
