// Tiny SVG writer for layout/routing snapshots (Figs 3, 5, 8, 10).
#pragma once

#include <string>
#include <vector>

namespace m3d::util {

class SvgWriter {
 public:
  /// Viewport in user units (microns); the output is scaled to pixel_width.
  SvgWriter(double width_um, double height_um, double pixel_width = 800.0);

  void rect(double x, double y, double w, double h, const std::string& fill,
            double opacity = 1.0, const std::string& stroke = {});
  void line(double x1, double y1, double x2, double y2,
            const std::string& color, double width_um);
  void circle(double cx, double cy, double r, const std::string& fill);
  void text(double x, double y, const std::string& s, double size_um,
            const std::string& color = "black");

  std::string finish() const;
  /// Writes the document to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  double scale_;
  double width_px_, height_px_;
  std::vector<std::string> body_;
};

}  // namespace m3d::util
