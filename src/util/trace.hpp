// RAII span timing. A ScopedTimer marks a named region of the flow: on
// construction it logs a nested "begin" line (kDebug by default), on
// destruction it logs the elapsed wall time and records the sample into the
// global metrics registry under "span.<name>". Spans nest (per thread): the
// log indentation follows the nesting depth, so `M3D_LOG_LEVEL=debug` prints
// a live call-tree of the flow with timings.
#pragma once

#include <chrono>
#include <string>
#include <utility>

#include "util/log.hpp"

namespace m3d::util {

/// Current per-thread span nesting depth (0 outside any span).
int span_depth();

/// Snapshot of a thread's span nesting, for carrying across thread hops:
/// capture on the submitting thread, adopt on the worker with a
/// SpanContextScope so worker-side spans attach to the submitting task's
/// span instead of starting a fresh root.
struct SpanContext {
  int depth = 0;
};

/// The calling thread's current span context.
SpanContext capture_span_context();

/// RAII adoption of a captured span context: sets the calling thread's span
/// depth for the scope's lifetime and restores the previous depth on exit.
class SpanContextScope {
 public:
  explicit SpanContextScope(const SpanContext& ctx);
  ~SpanContextScope();
  SpanContextScope(const SpanContextScope&) = delete;
  SpanContextScope& operator=(const SpanContextScope&) = delete;

 private:
  int saved_depth_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name, LogLevel level = LogLevel::kDebug);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Wall time since construction, in milliseconds.
  double elapsed_ms() const;

  /// Ends the span early (logs + records); the destructor then does nothing.
  /// Returns the elapsed milliseconds.
  double stop();

 private:
  std::string name_;
  LogLevel level_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// Lightweight sibling of ScopedTimer for hot paths: records its lifetime
/// into the named duration histogram but never logs and does not affect
/// span nesting. Use where a full span would swamp the debug stream.
class ScopedMsObserver {
 public:
  explicit ScopedMsObserver(std::string histogram)
      : histogram_(std::move(histogram)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedMsObserver();
  ScopedMsObserver(const ScopedMsObserver&) = delete;
  ScopedMsObserver& operator=(const ScopedMsObserver&) = delete;

 private:
  std::string histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace m3d::util
