// RAII span timing. A ScopedTimer marks a named region of the flow: on
// construction it logs a nested "begin" line (kDebug by default), on
// destruction it logs the elapsed wall time and records the sample into the
// global metrics registry under "span.<name>". Spans nest (per thread): the
// log indentation follows the nesting depth, so `M3D_LOG_LEVEL=debug` prints
// a live call-tree of the flow with timings.
//
// When trace collection is on (obs::enabled(), see src/obs/trace.hpp), every
// ScopedTimer additionally emits a begin/end TraceEvent pair carrying a
// process-unique span id and its parent's id — the timeline the Chrome
// trace export renders. Emission happens exactly once per span, whether the
// span ends via stop() or the destructor; when collection is off the only
// cost is one relaxed atomic load per span.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "util/log.hpp"

namespace m3d::util {

/// Current per-thread span nesting depth (0 outside any span).
int span_depth();

/// The calling thread's innermost traced span id (0 outside any traced
/// span) — the parent for newly emitted trace events.
uint64_t current_span_id();

/// Snapshot of a thread's span nesting, for carrying across thread hops:
/// capture on the submitting thread, adopt on the worker with a
/// SpanContextScope so worker-side spans attach to the submitting task's
/// span (same span id, same flow attribution) instead of starting a fresh
/// root.
struct SpanContext {
  int depth = 0;
  uint64_t span_id = 0;  // innermost traced span of the submitting thread
  uint32_t flow = 0;     // obs flow attribution of the submitting thread
};

/// The calling thread's current span context.
SpanContext capture_span_context();

/// RAII adoption of a captured span context: sets the calling thread's span
/// depth, trace parent and flow attribution for the scope's lifetime and
/// restores the previous values on exit.
class SpanContextScope {
 public:
  explicit SpanContextScope(const SpanContext& ctx);
  ~SpanContextScope();
  SpanContextScope(const SpanContextScope&) = delete;
  SpanContextScope& operator=(const SpanContextScope&) = delete;

 private:
  int saved_depth_;
  uint64_t saved_span_;
  uint32_t saved_flow_;
};

/// RAII re-parenting: makes `span_id` the thread's innermost span for trace
/// parenting. The exec pool wraps each task's body in one of these so spans
/// opened inside the task nest under the per-task trace span.
class ScopedSpanParent {
 public:
  explicit ScopedSpanParent(uint64_t span_id);
  ~ScopedSpanParent();
  ScopedSpanParent(const ScopedSpanParent&) = delete;
  ScopedSpanParent& operator=(const ScopedSpanParent&) = delete;

 private:
  uint64_t saved_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name, LogLevel level = LogLevel::kDebug);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Wall time since construction, in milliseconds.
  double elapsed_ms() const;

  /// Ends the span early (logs + records + emits the trace end event); the
  /// destructor then does nothing — metrics and trace each see the span
  /// exactly once. Returns the elapsed milliseconds.
  double stop();

 private:
  std::string name_;
  LogLevel level_;
  std::chrono::steady_clock::time_point start_;
  uint64_t span_id_ = 0;   // 0: tracing was off at construction
  uint64_t parent_id_ = 0;
  bool stopped_ = false;
};

/// Lightweight sibling of ScopedTimer for hot paths: records its lifetime
/// into the named duration histogram but never logs, does not affect span
/// nesting and emits no trace events. Use where a full span would swamp the
/// debug stream (or the trace buffer).
class ScopedMsObserver {
 public:
  explicit ScopedMsObserver(std::string histogram)
      : histogram_(std::move(histogram)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedMsObserver();
  ScopedMsObserver(const ScopedMsObserver&) = delete;
  ScopedMsObserver& operator=(const ScopedMsObserver&) = delete;

 private:
  std::string histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace m3d::util
