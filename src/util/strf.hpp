// Printf-style std::string formatting (GCC 12 lacks <format>).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace m3d::util {

/// Formats like printf and returns a std::string.
[[gnu::format(printf, 1, 2)]] inline std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace m3d::util
