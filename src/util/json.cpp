#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace m3d::util::json {

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double n) {
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = n;
  return v;
}

Value Value::str(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->type_ == Type::kNumber) ? v->num_ : fallback;
}

std::string Value::string_or(const std::string& key,
                             std::string fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->type_ == Type::kString) ? v->str_
                                                     : std::move(fallback);
}

Value& Value::set(const std::string& key, Value v) {
  if (type_ == Type::kObject) {
    for (auto& [k, old] : obj_) {
      if (k == key) {
        old = std::move(v);
        return *this;
      }
    }
    obj_.emplace_back(key, std::move(v));
  }
  return *this;
}

Value& Value::push(Value v) {
  if (type_ == Type::kArray) arr_.push_back(std::move(v));
  return *this;
}

namespace {

void escape_to(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void number_to(double v, std::string* out) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; emit null so consumers fail loudly, not subtly.
    *out += "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

}  // namespace

void Value::dump_to(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: number_to(num_, out); break;
    case Type::kString: escape_to(str_, out); break;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) *out += ',';
        if (pretty) {
          *out += '\n';
          *out += pad;
        }
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        *out += '\n';
        *out += close_pad;
      }
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) *out += ',';
        if (pretty) {
          *out += '\n';
          *out += pad;
        }
        escape_to(obj_[i].first, out);
        *out += pretty ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        *out += '\n';
        *out += close_pad;
      }
      *out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* err)
      : text_(text), err_(err) {}

  bool parse(Value* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (err_ != nullptr) {
      *err_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            const unsigned long cp =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            // ASCII-only reports: non-ASCII code points become '?'.
            out->push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Value* out) {
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      *out = Value::null();
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal");
      *out = Value::boolean(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal");
      *out = Value::boolean(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Value::str(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos_;
      *out = Value::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Value item;
        skip_ws();
        if (!parse_value(&item)) return false;
        out->push(std::move(item));
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos_;
      *out = Value::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        skip_ws();
        Value item;
        if (!parse_value(&item)) return false;
        out->set(key, std::move(item));
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
    }
    // Number.
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return fail("unexpected character");
    pos_ = static_cast<size_t>(end - text_.c_str());
    *out = Value::number(v);
    return true;
  }

  const std::string& text_;
  std::string* err_;
  size_t pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value* out, std::string* err) {
  return Parser(text, err).parse(out);
}

}  // namespace m3d::util::json
