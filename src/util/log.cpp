#include "util/log.hpp"

#include <cctype>
#include <chrono>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace m3d::util {
namespace {

std::mutex g_mu;

std::atomic<bool> env_level_set{false};

LogLevel initial_level() {
  const char* env = std::getenv("M3D_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = parse_log_level(env); parsed.has_value()) {
      env_level_set = true;
      return *parsed;
    }
    std::fprintf(stderr, "[warn ] ignoring unknown M3D_LOG_LEVEL '%s'\n", env);
  }
  return LogLevel::kWarn;
}

LogLevel& level_ref() {
  static LogLevel level = initial_level();
  return level;
}

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug]";
    case LogLevel::kInfo: return "[info ]";
    case LogLevel::kWarn: return "[warn ]";
    case LogLevel::kError: return "[error]";
    case LogLevel::kSilent: return "";
  }
  return "";
}

// Anchored at static-init time, i.e. effectively process start.
const std::chrono::steady_clock::time_point g_start =
    std::chrono::steady_clock::now();

double elapsed_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_start)
      .count();
}

}  // namespace

std::optional<LogLevel> parse_log_level(const std::string& name) {
  std::string low;
  for (char c : name) {
    low.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (low == "debug") return LogLevel::kDebug;
  if (low == "info") return LogLevel::kInfo;
  if (low == "warn" || low == "warning") return LogLevel::kWarn;
  if (low == "error") return LogLevel::kError;
  if (low == "silent" || low == "off") return LogLevel::kSilent;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mu);
  level_ref() = level;
}

void set_default_log_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mu);
  level_ref();  // force env initialization first
  if (!env_level_set) level_ref() = level;
}

LogLevel log_level() {
  std::lock_guard<std::mutex> lock(g_mu);
  return level_ref();
}

void log(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (static_cast<int>(level) < static_cast<int>(level_ref())) return;
  // One fprintf per line: stderr is unbuffered but a single call keeps the
  // line atomic even when several threads log at once.
  std::fprintf(stderr, "%s %8.3fs %s\n", prefix(level), elapsed_s(),
               msg.c_str());
}

}  // namespace m3d::util
