// Minimal leveled logger. All flow/bench output that is not a result table
// goes through this so verbosity can be controlled globally.
#pragma once

#include <string>

namespace m3d::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Global verbosity threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& msg);

inline void debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
inline void info(const std::string& msg) { log(LogLevel::kInfo, msg); }
inline void warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
inline void error(const std::string& msg) { log(LogLevel::kError, msg); }

}  // namespace m3d::util
