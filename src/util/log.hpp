// Minimal leveled logger. All flow/bench output that is not a result table
// goes through this so verbosity can be controlled globally.
//
// Each line carries a monotonic timestamp (seconds since process start) and
// emission is mutex-serialized, so interleaved lines from future parallel
// stages stay intact. The initial threshold comes from the M3D_LOG_LEVEL
// environment variable (debug|info|warn|error|silent) and defaults to warn.
#pragma once

#include <optional>
#include <string>

namespace m3d::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Global verbosity threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Like set_log_level, but only applies when M3D_LOG_LEVEL is unset, so an
/// explicit environment override always wins over a program's default.
void set_default_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "silent" (case-insensitive);
/// nullopt on anything else.
std::optional<LogLevel> parse_log_level(const std::string& name);

void log(LogLevel level, const std::string& msg);

inline void debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
inline void info(const std::string& msg) { log(LogLevel::kInfo, msg); }
inline void warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
inline void error(const std::string& msg) { log(LogLevel::kError, msg); }

}  // namespace m3d::util
