// Aligned ASCII table builder used by every bench binary to print
// paper-style result tables.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace m3d::util {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> cols);
  /// Adds a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cols);
  /// Adds a horizontal separator between the rows added before/after.
  void add_separator();

  size_t num_rows() const { return rows_.size(); }
  /// Renders the table with column alignment (first column left, rest right).
  std::string to_string() const;
  void print() const;

 private:
  struct Row {
    std::vector<std::string> cols;
    bool separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a percent difference like the paper's tables: "-41.7%".
std::string pct(double ratio_minus_one);
/// Formats "value (pct%)" where pct = 100*value/base, like Tables 13/14.
std::string val_with_pct_of(double value, double base, const char* val_fmt);

}  // namespace m3d::util
