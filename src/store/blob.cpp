#include "store/blob.hpp"

#include <cstring>

#include "util/strf.hpp"

namespace m3d::store {

uint64_t fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string key_hex(uint64_t key) {
  return util::strf("%016llx", static_cast<unsigned long long>(key));
}

void BlobWriter::raw(const void* p, size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

void BlobWriter::str(std::string_view s) {
  u32(static_cast<uint32_t>(s.size()));
  raw(s.data(), s.size());
}

bool BlobReader::raw(void* p, size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(p, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool BlobReader::u8(uint8_t* v) {
  if (!ok_ || pos_ >= data_.size()) {
    ok_ = false;
    return false;
  }
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool BlobReader::str(std::string* s) {
  uint32_t n = 0;
  if (!u32(&n)) return false;
  if (data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  s->assign(data_.data() + pos_, n);
  pos_ += n;
  return true;
}

}  // namespace m3d::store
