#include "store/store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "store/blob.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strf.hpp"
#include "util/trace.hpp"

namespace m3d::store {
namespace {

constexpr const char kMagic[] = "m3ds1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;
constexpr const char kSuffix[] = ".m3ds";
constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
constexpr size_t kHexLen = 16;

/// flock(2) on `<dir>/.lock` for the lifetime of the object. Writers take
/// it shared (they only ever rename into place, which is atomic on its
/// own); the GC sweep takes it exclusive so it never deletes a temp file
/// another process is about to rename. A missing directory simply yields an
/// unheld lock — callers treat that as "nothing to protect".
class DirLock {
 public:
  DirLock(const std::string& dir, bool exclusive)
      : fd_(::open((dir + "/.lock").c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                   0666)) {
    if (fd_ >= 0) ::flock(fd_, exclusive ? LOCK_EX : LOCK_SH);
  }
  ~DirLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

 private:
  int fd_ = -1;
};

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Splits "<stage>-<16hex>.m3ds" (basename). Returns false for lock/temp/
/// foreign files.
bool parse_entry_name(const std::string& base, std::string* stage,
                      std::string* hex) {
  if (base.size() < kSuffixLen + kHexLen + 2) return false;
  if (base.compare(base.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return false;
  }
  const std::string stem = base.substr(0, base.size() - kSuffixLen);
  if (stem.size() < kHexLen + 2) return false;
  const size_t dash = stem.size() - kHexLen - 1;
  if (stem[dash] != '-') return false;
  *stage = stem.substr(0, dash);
  *hex = stem.substr(dash + 1);
  if (stage->empty()) return false;
  for (const char c : *hex) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

std::string entry_bytes(const std::string& stage, const std::string& key,
                        const std::string& blob) {
  BlobWriter w;
  w.str(stage);
  w.str(key);
  w.u64(fnv1a64(blob));
  w.str(blob);
  std::string text;
  text.reserve(kMagicLen + w.bytes().size());
  text.append(kMagic, kMagicLen);
  text += w.bytes();
  return text;
}

}  // namespace

Store::Store(std::string dir) : dir_(std::move(dir)) {}

std::string Store::entry_path(const std::string& stage,
                              const std::string& key_string) const {
  return util::strf("%s/%s-%s%s", dir_.c_str(), stage.c_str(),
                    key_hex(fnv1a64(key_string)).c_str(), kSuffix);
}

Store::ReadStatus Store::parse_entry(const std::string& text,
                                     const std::string& expect_stage,
                                     const std::string& expect_key,
                                     uint64_t expect_hash, std::string* blob) {
  if (text.size() < kMagicLen ||
      text.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return ReadStatus::kCorrupt;
  }
  BlobReader r(std::string_view(text).substr(kMagicLen));
  std::string stage;
  std::string key;
  uint64_t checksum = 0;
  std::string payload;
  if (!r.str(&stage) || !r.str(&key) || !r.u64(&checksum) ||
      !r.str(&payload) || !r.at_end()) {
    return ReadStatus::kCorrupt;
  }
  if (stage != expect_stage) return ReadStatus::kCorrupt;
  if (fnv1a64(key) != expect_hash) return ReadStatus::kCorrupt;
  if (fnv1a64(payload) != checksum) return ReadStatus::kCorrupt;
  // A well-formed entry for a *different* canonical key under the same
  // hash: a genuine collision, not damage — leave the file alone.
  if (!expect_key.empty() && key != expect_key) return ReadStatus::kCollision;
  *blob = std::move(payload);
  return ReadStatus::kOk;
}

std::optional<std::string> Store::get(const std::string& stage,
                                      const std::string& key_string,
                                      GetOutcome* outcome) const {
  GetOutcome oc = GetOutcome::kMiss;
  std::optional<std::string> result;
  if (enabled()) {
    const util::ScopedTimer span("store.get");
    const std::string path = entry_path(stage, key_string);
    std::string text;
    if (read_file(path, &text)) {
      std::string blob;
      switch (parse_entry(text, stage, key_string, fnv1a64(key_string),
                          &blob)) {
        case ReadStatus::kOk:
          oc = GetOutcome::kHit;
          result = std::move(blob);
          // LRU stamp: a hit refreshes the entry's mtime so the GC sweep
          // evicts cold entries first. Pure metadata — never a clock read.
          ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
          break;
        case ReadStatus::kCorrupt:
          oc = GetOutcome::kCorrupt;
          // Evict on sight: the next write self-heals the slot, and a
          // torn entry can never satisfy two different lookups.
          util::warn(util::strf("store: evicting corrupt entry %s",
                                path.c_str()));
          ::unlink(path.c_str());
          break;
        case ReadStatus::kCollision:
          oc = GetOutcome::kCollision;
          util::warn(util::strf(
              "store: %s holds a different key (hash collision); miss",
              path.c_str()));
          break;
      }
    }
  }
  switch (oc) {
    case GetOutcome::kHit:
      ++hits_;
      util::count("store.hits");
      break;
    case GetOutcome::kMiss:
      ++misses_;
      util::count("store.misses");
      break;
    case GetOutcome::kCorrupt:
      ++corrupt_;
      util::count("store.corrupt");
      break;
    case GetOutcome::kCollision:
      ++collisions_;
      util::count("store.collisions");
      break;
  }
  if (outcome != nullptr) *outcome = oc;
  return result;
}

bool Store::put(const std::string& stage, const std::string& key_string,
                const std::string& blob) const {
  if (!enabled()) return false;
  const util::ScopedTimer span("store.put");
  ::mkdir(dir_.c_str(), 0777);  // best effort; failure surfaces on open

  // Shared lock: concurrent writers are fine (rename is atomic; the last
  // writer of one key wins with an identical artifact, by determinism), but
  // a GC sweep must not run mid-publish.
  const DirLock lock(dir_, /*exclusive=*/false);

  const std::string path = entry_path(stage, key_string);
  // Distinct temp per writer: pid for cross-process, a process-local
  // sequence for two threads publishing the same key concurrently.
  static std::atomic<uint64_t> seq{0};
  const std::string tmp =
      util::strf("%s.tmp.%d.%llu", path.c_str(), static_cast<int>(::getpid()),
                 static_cast<unsigned long long>(seq.fetch_add(1)));
  const std::string text = entry_bytes(stage, key_string, blob);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      util::warn(util::strf("store: cannot write %s", tmp.c_str()));
      return false;
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!out.good()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    util::warn(util::strf("store: cannot publish %s", path.c_str()));
    return false;
  }
  ++puts_;
  util::count("store.puts");
  return true;
}

std::vector<EntryInfo> Store::list() const {
  std::vector<EntryInfo> out;
  if (!enabled()) return out;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return out;
  for (const dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
    const std::string base = e->d_name;
    EntryInfo info;
    if (!parse_entry_name(base, &info.stage, &info.key_hex)) continue;
    info.path = dir_ + "/" + base;
    struct stat st = {};
    if (::stat(info.path.c_str(), &st) != 0) continue;
    info.bytes = static_cast<uint64_t>(st.st_size);
    info.mtime_s = static_cast<int64_t>(st.st_mtim.tv_sec);
    info.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_nsec);
    out.push_back(std::move(info));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(), [](const EntryInfo& a, const EntryInfo& b) {
    if (a.stage != b.stage) return a.stage < b.stage;
    return a.key_hex < b.key_hex;
  });
  return out;
}

GcResult Store::gc(uint64_t max_bytes) const {
  GcResult res;
  if (!enabled()) return res;
  const util::ScopedTimer span("store.gc");
  const DirLock lock(dir_, /*exclusive=*/true);

  // Stray temp files (a crashed writer) are garbage by definition: with the
  // exclusive lock held, no live writer can be mid-publish.
  {
    DIR* d = ::opendir(dir_.c_str());
    if (d == nullptr) return res;
    std::vector<std::string> tmps;
    for (const dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
      const std::string base = e->d_name;
      if (base.find(".tmp.") != std::string::npos) {
        tmps.push_back(dir_ + "/" + base);
      }
    }
    ::closedir(d);
    for (const std::string& t : tmps) {
      if (::unlink(t.c_str()) == 0) ++res.tmp_removed;
    }
  }

  std::vector<EntryInfo> entries = list();
  res.scanned = static_cast<int64_t>(entries.size());
  for (const EntryInfo& e : entries) res.bytes_before += e.bytes;
  res.bytes_after = res.bytes_before;
  if (res.bytes_before <= max_bytes) return res;

  // LRU: oldest mtime first; name breaks ties so equal stamps still sweep
  // in one deterministic order.
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              if (a.mtime_s != b.mtime_s) return a.mtime_s < b.mtime_s;
              if (a.mtime_ns != b.mtime_ns) return a.mtime_ns < b.mtime_ns;
              return a.path < b.path;
            });
  for (const EntryInfo& e : entries) {
    if (res.bytes_after <= max_bytes) break;
    if (::unlink(e.path.c_str()) != 0) continue;
    res.bytes_after -= e.bytes;
    ++res.evicted;
    ++evictions_;
    util::count("store.evictions");
    util::info(util::strf("store: gc evicted %s (%llu bytes)", e.path.c_str(),
                          static_cast<unsigned long long>(e.bytes)));
  }
  return res;
}

VerifyResult Store::verify() const {
  VerifyResult res;
  if (!enabled()) return res;
  const DirLock lock(dir_, /*exclusive=*/false);
  for (const EntryInfo& e : list()) {
    std::string text;
    std::string blob;
    uint64_t hash = 0;
    for (const char c : e.key_hex) {
      hash = hash * 16 + static_cast<uint64_t>(
                             c <= '9' ? c - '0' : c - 'a' + 10);
    }
    const bool ok =
        read_file(e.path, &text) &&
        parse_entry(text, e.stage, /*expect_key=*/"", hash, &blob) ==
            ReadStatus::kOk;
    if (ok) {
      ++res.entries;
    } else {
      res.corrupt_paths.push_back(e.path);
    }
  }
  return res;
}

Stats Store::stats() const {
  Stats s;
  s.hits = hits_.load();
  s.misses = misses_.load();
  s.corrupt = corrupt_.load();
  s.collisions = collisions_.load();
  s.puts = puts_.load();
  s.evictions = evictions_.load();
  return s;
}

}  // namespace m3d::store
