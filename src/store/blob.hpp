// Bit-exact binary artifact codec for the content-addressed store
// (store/store.hpp). Doubles are stored as raw IEEE-754 bit patterns
// (memcpy, never text), so a decoded artifact feeds the flow the *same*
// numbers that produced it — the store's byte-identity contract (a store-hit
// flow emits the same canonical report bytes as a cold flow) depends on it.
// Values use the host representation: the store is a single-host cache (see
// store.hpp), never a portable interchange format.
//
// BlobReader is fully bounds-checked and never throws: any out-of-range or
// oversized read trips the sticky ok() flag and every later read fails, so
// a truncated or corrupted blob decodes to "no" rather than UB — the
// crash-consistency tests feed it deliberately torn entries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace m3d::store {

/// FNV-1a 64-bit: blob checksums and store keys. Same function (and
/// constants) as serve/protocol.cpp's request hash, duplicated here so the
/// store layer stays below the serving layer in the dependency order.
uint64_t fnv1a64(std::string_view s);

/// Lower-case 16-digit hex (store entry filename stem).
std::string key_hex(uint64_t key);

class BlobWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(uint32_t v) { raw(&v, sizeof v); }
  void u64(uint64_t v) { raw(&v, sizeof v); }
  void i64(int64_t v) { raw(&v, sizeof v); }
  void i32(int32_t v) { raw(&v, sizeof v); }
  /// Raw bit pattern, so NaN payloads and signed zeros round-trip exactly.
  void f64(double v) { raw(&v, sizeof v); }
  void str(std::string_view s);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, size_t n);
  std::string buf_;
};

class BlobReader {
 public:
  explicit BlobReader(std::string_view data) : data_(data) {}

  bool u8(uint8_t* v);
  bool u32(uint32_t* v) { return raw(v, sizeof *v); }
  bool u64(uint64_t* v) { return raw(v, sizeof *v); }
  bool i64(int64_t* v) { return raw(v, sizeof *v); }
  bool i32(int32_t* v) { return raw(v, sizeof *v); }
  bool f64(double* v) { return raw(v, sizeof *v); }
  bool str(std::string* s);

  /// False once any read ran past the end (sticky).
  bool ok() const { return ok_; }
  /// True when every byte was consumed (trailing garbage is corruption).
  bool at_end() const { return ok_ && pos_ == data_.size(); }

 private:
  bool raw(void* p, size_t n);
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace m3d::store
