// Content-addressed stage-artifact store: a persistent, single-host cache
// keyed (stage, FNV-1a-64 of a canonical key string) -> artifact blob. The
// flow memoizes its expensive prefixes through it (characterized libraries,
// generated netlists, placements — see flow/artifacts.hpp for the key
// schema), and the serve response cache is its outermost layer (stage
// "report", serve/cache.hpp), so results survive daemon restarts and are
// shared between processes on one host.
//
// Layout: one file per entry, `<dir>/<stage>-<16-hex-key>.m3ds`, holding
//
//   "m3ds1\n" | stage | canonical key echo | blob FNV-1a-64 | blob
//
// (length-prefixed fields; see store.cpp). Every hit re-verifies all of it:
// the stage and the full canonical key must byte-match the lookup and the
// blob must match its stored checksum. A hash collision therefore reads as
// a miss (never a wrong artifact), and any torn, truncated or foreign file
// reads as a miss too — corrupt entries are evicted on sight (unlink) and
// self-heal on the next write.
//
// Crash consistency: writes land in a same-directory temp file
// (`.tmp.<pid>` suffix) and publish via rename(2), so a reader sees either
// the complete old entry, the complete new entry, or nothing. Multi-process
// safety on one host comes from flock(2) on `<dir>/.lock`: writers and
// readers-of-many (verify) take it shared, the GC sweep takes it exclusive,
// so a sweep never deletes a temp file mid-publish. Blobs use the host's
// byte representation (store/blob.hpp) — share the directory between
// processes, not between machines.
//
// Eviction: `gc(max_bytes)` is a size-budgeted LRU sweep — hits touch the
// entry's mtime (utimensat), gc deletes oldest-mtime-first (filename
// tie-break, so the sweep is deterministic for equal stamps) until the
// directory fits the budget, and removes stray temp files.
//
// Observability: store.hits / store.misses / store.collisions /
// store.corrupt / store.puts / store.evictions counters in the calling
// thread's metrics sink, span.store.{get,put,gc} timing histograms, and a
// per-instance Stats snapshot for tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace m3d::store {

/// Why a get() returned no blob (or kHit when it did).
enum class GetOutcome {
  kHit,
  kMiss,       // no entry file
  kCorrupt,    // torn/truncated/foreign entry — evicted on sight
  kCollision,  // a *valid* entry for a different key (hash collision)
};

struct Stats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t corrupt = 0;
  int64_t collisions = 0;
  int64_t puts = 0;
  int64_t evictions = 0;
};

struct EntryInfo {
  std::string path;
  std::string stage;
  std::string key_hex;
  uint64_t bytes = 0;
  /// Entry mtime (LRU stamp), seconds + nanoseconds since the epoch.
  int64_t mtime_s = 0;
  int64_t mtime_ns = 0;
};

struct GcResult {
  int64_t scanned = 0;      // entries seen
  int64_t evicted = 0;      // entries deleted
  int64_t tmp_removed = 0;  // stray temp files deleted
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
};

struct VerifyResult {
  int64_t entries = 0;  // well-formed entries
  std::vector<std::string> corrupt_paths;
  bool clean() const { return corrupt_paths.empty(); }
};

class Store {
 public:
  /// An empty `dir` disables the store: every get misses, every put is
  /// dropped. The directory is created on first put.
  explicit Store(std::string dir);
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Entry file path for (stage, FNV-1a-64 of key_string).
  std::string entry_path(const std::string& stage,
                         const std::string& key_string) const;

  /// The stored blob, fully re-verified (stage + canonical key echo +
  /// checksum), or nullopt with `*outcome` explaining why. A hit touches
  /// the entry's mtime (the LRU stamp). Thread- and process-safe.
  std::optional<std::string> get(const std::string& stage,
                                 const std::string& key_string,
                                 GetOutcome* outcome = nullptr) const;

  /// Atomically publishes (temp + rename) the blob for (stage, key).
  /// Overwrites any existing entry. Returns false on I/O failure; never
  /// throws.
  bool put(const std::string& stage, const std::string& key_string,
           const std::string& blob) const;

  /// Size-budgeted LRU sweep: removes stray temp files, then evicts
  /// oldest-mtime-first entries until total entry bytes <= max_bytes.
  /// Takes the directory lock exclusively.
  GcResult gc(uint64_t max_bytes) const;

  /// Reads and fully validates every entry (shared lock). Read-only: a
  /// corrupt entry is reported, not evicted (get() evicts on sight).
  VerifyResult verify() const;

  /// Every entry file, deterministically ordered by (stage, key).
  std::vector<EntryInfo> list() const;

  /// Per-instance counters (the store.* metrics aggregate across
  /// instances; tests assert on this snapshot).
  Stats stats() const;

 private:
  enum class ReadStatus { kOk, kCorrupt, kCollision };
  /// Parses + verifies one entry file's bytes. `expect_key` empty: accept
  /// any key whose hash matches `expect_hash` (verify()'s mode).
  static ReadStatus parse_entry(const std::string& text,
                                const std::string& expect_stage,
                                const std::string& expect_key,
                                uint64_t expect_hash, std::string* blob);

  std::string dir_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> corrupt_{0};
  mutable std::atomic<int64_t> collisions_{0};
  mutable std::atomic<int64_t> puts_{0};
  mutable std::atomic<int64_t> evictions_{0};
};

}  // namespace m3d::store
