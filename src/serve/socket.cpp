#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/strf.hpp"

namespace m3d::serve {

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

namespace {

bool set_err(std::string* err, const std::string& what) {
  if (err != nullptr) {
    *err = util::strf("%s: %s", what.c_str(), std::strerror(errno));
  }
  return false;
}

}  // namespace

Socket listen_tcp(const std::string& host, int port, int* bound_port,
                  std::string* err) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    set_err(err, "socket");
    return {};
  }
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = util::strf("bad host \"%s\"", host.c_str());
    return {};
  }
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    set_err(err, util::strf("bind %s:%d", host.c_str(), port));
    return {};
  }
  if (::listen(s.fd(), 64) != 0) {
    set_err(err, "listen");
    return {};
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&actual), &len) ==
        0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  return s;
}

Socket listen_unix(const std::string& path, std::string* err) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    if (err != nullptr) *err = "unix socket path too long";
    return {};
  }
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) {
    set_err(err, "socket");
    return {};
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    set_err(err, util::strf("bind %s", path.c_str()));
    return {};
  }
  if (::listen(s.fd(), 64) != 0) {
    set_err(err, "listen");
    return {};
  }
  return s;
}

Socket accept_conn(const Socket& listener) {
  return Socket(::accept(listener.fd(), nullptr, nullptr));
}

Socket connect_tcp(const std::string& host, int port, std::string* err) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    set_err(err, "socket");
    return {};
  }
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = util::strf("bad host \"%s\"", host.c_str());
    return {};
  }
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    set_err(err, util::strf("connect %s:%d", host.c_str(), port));
    return {};
  }
  return s;
}

Socket connect_unix(const std::string& path, std::string* err) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    if (err != nullptr) *err = "unix socket path too long";
    return {};
  }
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) {
    set_err(err, "socket");
    return {};
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    set_err(err, util::strf("connect %s", path.c_str()));
    return {};
  }
  return s;
}

bool write_frame(const Socket& s, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(s.fd(), frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

FrameStatus read_frame(const Socket& s, FrameDecoder* dec,
                       std::string* payload) {
  for (;;) {
    const FrameStatus st = dec->next(payload);
    if (st != FrameStatus::kNeedMore) return st;
    char buf[4096];
    const ssize_t n = ::recv(s.fd(), buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return FrameStatus::kNeedMore;  // EOF / reset before a frame
    dec->feed(buf, static_cast<size_t>(n));
  }
}

}  // namespace m3d::serve
