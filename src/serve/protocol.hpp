// m3d_serve wire protocol: framed JSON request/response documents plus the
// strict request schema and its canonical form.
//
// Framing. A frame is one JSON document, encoded either way on the wire:
//
//   * length-framed:  "<decimal byte count>\n<payload bytes>\n" — the
//     trailing newline is part of the frame but not of the payload, so
//     captures stay line-readable;
//   * line-framed:    a payload whose first byte is '{', terminated by the
//     first '\n' (netcat-friendly; payloads must then be newline-free,
//     which every compact-dumped document is).
//
// FrameDecoder accepts both forms, enforces a byte limit on either, and
// reports malformed input as a structured status instead of desyncing —
// the server answers with an "error" document and drops the connection.
//
// Requests. The one work-carrying request type is "run": a flow request
// (bench x style x clock_ns x seed x check_level x scale_shift x
// target_util). Parsing is strict: unknown fields, wrong types and
// out-of-domain values are rejected with a structured RequestError naming
// the field, so client typos never silently run a default flow.
// "ping", "stats" and "shutdown" are control requests handled by the
// server directly.
//
// Canonical form. request_canonical() resolves every optional field to its
// effective value (per-bench default scale/utilization, named enums) and
// dumps a fixed-order compact JSON document; request_key() is the FNV-1a
// 64-bit hash of that string. Two requests that would execute identical
// flows — whether fields were spelled out or defaulted — share one key.
// The key is the coalescing identity, the response-cache filename and the
// `id` echoed in every reply. See DESIGN.md "Serve request keys" for the
// forward-compatibility contract with the content-addressed store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "check/check.hpp"
#include "gen/gen.hpp"
#include "tech/tech.hpp"
#include "util/json.hpp"

namespace m3d::serve {

/// Protocol identifier echoed by ping replies and cache files.
inline constexpr const char* kProtocolVersion = "m3d.serve/v1";

/// Default inbound frame limit (requests are tiny; anything bigger is a
/// client bug or abuse). Responses are not limited — reports are large.
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

/// Upper bound for Request::hold_ms (an ops/test knob, not a flow input).
inline constexpr int64_t kMaxHoldMs = 10000;

// ---------------------------------------------------------------------------
// Request schema.

/// One validated "run" request. Fields mirror the FlowOptions the service
/// builds; -1 sentinels mean "resolve the per-bench default" and are
/// resolved before the canonical form is produced.
struct Request {
  gen::Bench bench = gen::Bench::kFpu;
  tech::Node node = tech::Node::k45nm;
  tech::Style style = tech::Style::k2D;
  double clock_ns = 0.0;   // 0: auto-clock (memoized in flow::WarmContext)
  uint64_t seed = 20130529;
  int scale_shift = -1;    // -1: flow::default_scale_shift(bench)
  double target_util = -1.0;  // -1: flow::default_utilization(bench)
  check::Level check_level = check::Level::kBasic;
  /// Stream stage-boundary progress frames before the final reply.
  bool progress = true;
  /// Hold the execution slot this many ms before running the flow. Lets
  /// operators and the CI smoke script create deterministic overload
  /// windows; capped at kMaxHoldMs. Part of the request identity.
  int64_t hold_ms = 0;
};

/// Structured validation failure: a stable machine-readable `code`
/// ("unknown-field", "bad-type", "bad-value", "missing-field"), the field
/// that failed, and a human-readable message.
struct RequestError {
  std::string code;
  std::string field;
  std::string message;
};

/// Parses and validates the "run" document `v` (the whole frame, including
/// its "type" field). Strict: any unknown member is an error. On failure
/// returns false and fills `*err`.
bool parse_request(const util::json::Value& v, Request* out, RequestError* err);

/// The request with every -1 sentinel resolved to its effective value.
Request resolve_defaults(const Request& r);

/// Fixed-field-order compact JSON of resolve_defaults(r) — the coalescing /
/// cache identity of the request.
util::json::Value request_to_json(const Request& r);
std::string request_canonical(const Request& r);

/// FNV-1a 64-bit hash of request_canonical(r).
uint64_t request_key(const Request& r);
uint64_t fnv1a64(const std::string& s);

/// Lower-case 16-digit hex of a key (cache filename stem, reply `id`).
std::string key_hex(uint64_t key);

// ---------------------------------------------------------------------------
// Response builders. Every reply carries "type"; run-request replies also
// carry "id" (the request key hex).

util::json::Value make_error(const std::string& code,
                             const std::string& message,
                             const std::string& field = "");
util::json::Value make_busy(int64_t retry_after_ms, int queue_depth);
util::json::Value make_progress(const std::string& id,
                                const std::string& stage, int index,
                                double wall_ms);
/// `report` is the canonical run-report document (adopted).
util::json::Value make_result(const std::string& id, bool cached,
                              bool coalesced, util::json::Value report);
util::json::Value make_pong();

// ---------------------------------------------------------------------------
// Framing.

/// Length-framed encoding of one payload ("<len>\n<payload>\n").
std::string encode_frame(const std::string& payload);

enum class FrameStatus {
  kFrame,      // one complete payload extracted
  kNeedMore,   // no complete frame buffered yet
  kTooLarge,   // declared or actual size exceeds the limit
  kMalformed,  // header is neither a length line nor a '{' line
};

const char* to_string(FrameStatus status);

/// Incremental frame extractor: feed() appends raw bytes, next() pops one
/// payload per call. After kTooLarge/kMalformed the stream is poisoned
/// (every next() repeats the status) — the connection must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_bytes = kDefaultMaxFrameBytes)
      : max_bytes_(max_bytes) {}

  void feed(const char* data, size_t len) { buf_.append(data, len); }
  FrameStatus next(std::string* payload);

  /// Bytes buffered but not yet consumed (diagnostics).
  size_t pending() const { return buf_.size(); }

 private:
  size_t max_bytes_;
  std::string buf_;
  bool poisoned_ = false;
  FrameStatus poison_status_ = FrameStatus::kMalformed;
};

}  // namespace m3d::serve
