#include "serve/cache.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strf.hpp"

namespace m3d::serve {

namespace {
constexpr const char* kCacheSchema = "m3d.serve_cache/v1";
}

ResponseCache::ResponseCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResponseCache::entry_path(uint64_t key) const {
  return dir_ + "/" + key_hex(key) + ".json";
}

std::optional<std::string> ResponseCache::get(
    uint64_t key, const std::string& canonical_request) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(entry_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  util::json::Value doc;
  std::string err;
  if (!util::json::parse(text, &doc, &err) || !doc.is_object()) {
    util::warn(util::strf("serve cache: dropping unreadable entry %s (%s)",
                          entry_path(key).c_str(), err.c_str()));
    util::count("serve.cache_corrupt");
    return std::nullopt;
  }
  if (doc.string_or("schema", "") != kCacheSchema) {
    util::count("serve.cache_corrupt");
    return std::nullopt;
  }
  const util::json::Value* request = doc.find("request");
  const util::json::Value* report = doc.find("report");
  if (request == nullptr || report == nullptr) {
    util::count("serve.cache_corrupt");
    return std::nullopt;
  }
  // Collision / schema-drift guard: the stored request must round-trip to
  // the exact canonical string we are looking up. The canonical form is
  // compact fixed-order JSON, so re-dumping the parsed object is an exact
  // byte comparison.
  if (request->dump(-1) != canonical_request) {
    util::warn(util::strf(
        "serve cache: key %s stored a different request; treating as miss",
        key_hex(key).c_str()));
    util::count("serve.cache_collision");
    return std::nullopt;
  }
  return report->dump(-1);
}

bool ResponseCache::put(uint64_t key, const std::string& canonical_request,
                        const std::string& report_json) const {
  if (!enabled()) return false;
  ::mkdir(dir_.c_str(), 0777);  // best effort; failure surfaces on open

  // Assemble the document from the already-serialized parts so the report
  // bytes stored are exactly the bytes later hits return.
  std::string text;
  text.reserve(canonical_request.size() + report_json.size() + 128);
  text += "{\"schema\":\"";
  text += kCacheSchema;
  text += "\",\"key\":\"";
  text += key_hex(key);
  text += "\",\"request\":";
  text += canonical_request;
  text += ",\"report\":";
  text += report_json;
  text += "}\n";

  const std::string path = entry_path(key);
  const std::string tmp =
      util::strf("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      util::warn(util::strf("serve cache: cannot write %s", tmp.c_str()));
      return false;
    }
    out << text;
    if (!out.good()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    util::warn(util::strf("serve cache: cannot publish %s", path.c_str()));
    return false;
  }
  util::count("serve.cache_store");
  return true;
}

}  // namespace m3d::serve
