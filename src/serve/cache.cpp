#include "serve/cache.hpp"

#include <utility>

#include "serve/protocol.hpp"
#include "util/metrics.hpp"

namespace m3d::serve {

namespace {
// The store stage under which canonical reports live. The entry filename is
// report-<16-hex>.m3ds where the hex is fnv1a64(canonical request) — i.e.
// serve's request key, unchanged from the pre-store cache layout.
constexpr const char* kReportStage = "report";
}  // namespace

ResponseCache::ResponseCache(std::string dir) : store_(std::move(dir)) {}

std::string ResponseCache::entry_path(uint64_t key) const {
  if (!enabled()) return "";
  return store_.dir() + "/" + kReportStage + "-" + key_hex(key) + ".m3ds";
}

std::optional<std::string> ResponseCache::get(
    uint64_t key, const std::string& canonical_request) const {
  (void)key;  // derived: fnv1a64(canonical_request) == key
  if (!enabled()) return std::nullopt;
  store::GetOutcome outcome = store::GetOutcome::kMiss;
  std::optional<std::string> blob =
      store_.get(kReportStage, canonical_request, &outcome);
  switch (outcome) {
    case store::GetOutcome::kHit:
      break;
    case store::GetOutcome::kMiss:
      util::count("serve.cache_miss");
      break;
    case store::GetOutcome::kCorrupt:
      // The store already logged and evicted the entry by filename.
      util::count("serve.cache_corrupt");
      break;
    case store::GetOutcome::kCollision:
      util::count("serve.cache_collision");
      break;
  }
  return blob;
}

bool ResponseCache::put(uint64_t key, const std::string& canonical_request,
                        const std::string& report_json) const {
  (void)key;  // derived: fnv1a64(canonical_request) == key
  if (!enabled()) return false;
  if (!store_.put(kReportStage, canonical_request, report_json)) return false;
  util::count("serve.cache_store");
  return true;
}

}  // namespace m3d::serve
