// Socket front-end for the serve core: accept loops (TCP and/or Unix
// domain), one handler thread per connection, frame/JSON decode, request
// dispatch ("ping" / "stats" / "shutdown" / "run") and reply framing.
// All policy lives in Service (serve/service.hpp); the server only moves
// frames. Mid-request client disconnects are absorbed: the progress writer
// notices the dead peer, stops writing, and the flow still completes and
// populates the cache for the next caller.
#pragma once

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/warm.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace m3d::serve {

struct ServerOptions {
  /// TCP bind address. port >= 0 enables TCP; 0 asks the kernel for an
  /// ephemeral port (read it back via Server::port()). -1 disables TCP.
  std::string host = "127.0.0.1";
  int port = 0;
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string unix_path;
  /// Inbound frame size limit.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Whether {"type":"shutdown"} requests stop the server (the daemon
  /// enables it; embedders that manage lifetime themselves may not).
  bool allow_shutdown = true;
  ServeOptions serve;
};

class Server {
 public:
  Server(ServerOptions opt, flow::WarmContext* warm);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and spawns the accept threads.
  /// False + *err on bind failure (nothing is left running).
  bool start(std::string* err);

  /// The bound TCP port (after start), or -1 when TCP is disabled.
  int tcp_port() const { return bound_port_; }

  /// Blocks until stop() is called or a shutdown request arrives.
  void wait();

  /// Idempotent: closes listeners, interrupts in-flight connections,
  /// joins every thread. Called by the destructor.
  void stop();

  Service& service() { return service_; }

 private:
  void accept_loop(const Socket* listener);
  void handle_conn(std::list<Socket>::iterator conn_it);
  void handle_run(const Socket& conn, const util::json::Value& doc);
  void request_shutdown();

  ServerOptions opt_;
  Service service_;
  Socket tcp_listener_;
  Socket unix_listener_;
  int bound_port_ = -1;

  std::mutex mu_;  // conns_, threads_, stopping_
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::list<Socket> conns_;
  std::vector<std::thread> threads_;
};

}  // namespace m3d::serve
