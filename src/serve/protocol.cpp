#include "serve/protocol.hpp"

#include <cctype>
#include <utility>
#include <vector>

#include "flow/flow.hpp"
#include "util/strf.hpp"

namespace m3d::serve {

using util::json::Value;

namespace {

bool parse_bench(const std::string& s, gen::Bench* out) {
  for (gen::Bench b : gen::all_benches()) {
    if (s == gen::to_string(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

bool parse_style(const std::string& s, tech::Style* out) {
  for (tech::Style st :
       {tech::Style::k2D, tech::Style::kTMI, tech::Style::kTMIPlusM}) {
    if (s == tech::to_string(st)) {
      *out = st;
      return true;
    }
  }
  return false;
}

bool parse_node(const std::string& s, tech::Node* out) {
  for (tech::Node n : {tech::Node::k45nm, tech::Node::k7nm}) {
    if (s == tech::to_string(n)) {
      *out = n;
      return true;
    }
  }
  return false;
}

bool parse_check_level(const std::string& s, check::Level* out) {
  for (check::Level l :
       {check::Level::kNone, check::Level::kBasic, check::Level::kFull}) {
    if (s == check::to_string(l)) {
      *out = l;
      return true;
    }
  }
  return false;
}

bool fail(RequestError* err, std::string code, std::string field,
          std::string message) {
  if (err != nullptr) {
    err->code = std::move(code);
    err->field = std::move(field);
    err->message = std::move(message);
  }
  return false;
}

/// Exact non-negative integer stored in a JSON double (seeds up to 2^53
/// round-trip losslessly; larger seeds must be sent as decimal strings,
/// mirroring the run report's lossless-seed convention).
bool as_uint64(const Value& v, uint64_t* out) {
  if (v.type() == Value::Type::kString) {
    const std::string& s = v.as_string();
    if (s.empty()) return false;
    uint64_t acc = 0;
    for (char c : s) {
      if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
      const uint64_t digit = static_cast<uint64_t>(c - '0');
      if (acc > (UINT64_MAX - digit) / 10) return false;
      acc = acc * 10 + digit;
    }
    *out = acc;
    return true;
  }
  if (v.type() != Value::Type::kNumber) return false;
  const double d = v.as_number();
  if (d < 0.0 || d > 9007199254740992.0 ||
      d != static_cast<double>(static_cast<uint64_t>(d))) {
    return false;
  }
  *out = static_cast<uint64_t>(d);
  return true;
}

}  // namespace

bool parse_request(const Value& v, Request* out, RequestError* err) {
  if (!v.is_object()) {
    return fail(err, "bad-type", "", "request must be a JSON object");
  }
  Request r;
  bool saw_type = false;
  for (const auto& [key, field] : v.members()) {
    if (key == "type") {
      if (field.type() != Value::Type::kString || field.as_string() != "run") {
        return fail(err, "bad-value", "type", "expected \"run\"");
      }
      saw_type = true;
    } else if (key == "bench") {
      if (field.type() != Value::Type::kString ||
          !parse_bench(field.as_string(), &r.bench)) {
        return fail(err, "bad-value", "bench",
                    "expected one of FPU, AES, LDPC, DES, M256");
      }
    } else if (key == "style") {
      if (field.type() != Value::Type::kString ||
          !parse_style(field.as_string(), &r.style)) {
        return fail(err, "bad-value", "style",
                    "expected one of 2D, T-MI, T-MI+M");
      }
    } else if (key == "node") {
      if (field.type() != Value::Type::kString ||
          !parse_node(field.as_string(), &r.node)) {
        return fail(err, "bad-value", "node", "expected 45nm or 7nm");
      }
    } else if (key == "clock_ns") {
      if (field.type() != Value::Type::kNumber || field.as_number() < 0.0 ||
          field.as_number() > 1e6) {
        return fail(err, "bad-value", "clock_ns",
                    "expected a number in [0, 1e6] (0 = auto)");
      }
      r.clock_ns = field.as_number();
    } else if (key == "seed") {
      if (!as_uint64(field, &r.seed)) {
        return fail(err, "bad-value", "seed",
                    "expected a non-negative integer (or decimal string)");
      }
    } else if (key == "scale_shift") {
      if (field.type() != Value::Type::kNumber ||
          field.as_number() != static_cast<double>(
                                   static_cast<int>(field.as_number())) ||
          field.as_number() < -1.0 || field.as_number() > 16.0) {
        return fail(err, "bad-value", "scale_shift",
                    "expected an integer in [-1, 16] (-1 = bench default)");
      }
      r.scale_shift = static_cast<int>(field.as_number());
    } else if (key == "target_util") {
      if (field.type() != Value::Type::kNumber) {
        return fail(err, "bad-value", "target_util", "expected a number");
      }
      const double u = field.as_number();
      if (u != -1.0 && (u < 0.05 || u > 1.0)) {
        return fail(err, "bad-value", "target_util",
                    "expected -1 (bench default) or a value in [0.05, 1]");
      }
      r.target_util = u;
    } else if (key == "check_level") {
      if (field.type() != Value::Type::kString ||
          !parse_check_level(field.as_string(), &r.check_level)) {
        return fail(err, "bad-value", "check_level",
                    "expected none, basic or full");
      }
    } else if (key == "progress") {
      if (field.type() != Value::Type::kBool) {
        return fail(err, "bad-value", "progress", "expected a boolean");
      }
      r.progress = field.as_bool();
    } else if (key == "hold_ms") {
      if (field.type() != Value::Type::kNumber || field.as_number() < 0.0 ||
          field.as_number() > static_cast<double>(kMaxHoldMs)) {
        return fail(err, "bad-value", "hold_ms",
                    util::strf("expected a number in [0, %lld]",
                               static_cast<long long>(kMaxHoldMs)));
      }
      r.hold_ms = static_cast<int64_t>(field.as_number());
    } else {
      return fail(err, "unknown-field", key,
                  util::strf("unknown request field \"%s\"", key.c_str()));
    }
  }
  if (!saw_type) {
    return fail(err, "missing-field", "type", "request lacks \"type\"");
  }
  *out = r;
  return true;
}

Request resolve_defaults(const Request& r) {
  Request out = r;
  if (out.scale_shift < 0) {
    out.scale_shift = flow::default_scale_shift(out.bench);
  }
  if (out.target_util < 0.0) {
    out.target_util = flow::default_utilization(out.bench);
  }
  return out;
}

Value request_to_json(const Request& r_in) {
  const Request r = resolve_defaults(r_in);
  Value v = Value::object();
  v.set("type", Value::str("run"));
  v.set("bench", Value::str(gen::to_string(r.bench)));
  v.set("node", Value::str(tech::to_string(r.node)));
  v.set("style", Value::str(tech::to_string(r.style)));
  v.set("clock_ns", Value::number(r.clock_ns));
  // Lossless decimal string, like the run report's "seed" field.
  v.set("seed", Value::str(util::strf(
                    "%llu", static_cast<unsigned long long>(r.seed))));
  v.set("scale_shift", Value::number(r.scale_shift));
  v.set("target_util", Value::number(r.target_util));
  v.set("check_level", Value::str(check::to_string(r.check_level)));
  v.set("hold_ms", Value::number(static_cast<double>(r.hold_ms)));
  // `progress` is delivery-only: it changes what the client sees on the
  // wire, not what the flow computes, so it is not part of the identity.
  return v;
}

std::string request_canonical(const Request& r) {
  return request_to_json(r).dump(-1);
}

uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t request_key(const Request& r) {
  return fnv1a64(request_canonical(r));
}

std::string key_hex(uint64_t key) {
  return util::strf("%016llx", static_cast<unsigned long long>(key));
}

Value make_error(const std::string& code, const std::string& message,
                 const std::string& field) {
  Value v = Value::object();
  v.set("type", Value::str("error"));
  v.set("code", Value::str(code));
  if (!field.empty()) v.set("field", Value::str(field));
  v.set("message", Value::str(message));
  return v;
}

Value make_busy(int64_t retry_after_ms, int queue_depth) {
  Value v = Value::object();
  v.set("type", Value::str("busy"));
  v.set("retry_after_ms",
        Value::number(static_cast<double>(retry_after_ms)));
  v.set("queue_depth", Value::number(queue_depth));
  return v;
}

Value make_progress(const std::string& id, const std::string& stage,
                    int index, double wall_ms) {
  Value v = Value::object();
  v.set("type", Value::str("progress"));
  v.set("id", Value::str(id));
  v.set("stage", Value::str(stage));
  v.set("index", Value::number(index));
  v.set("wall_ms", Value::number(wall_ms));
  return v;
}

Value make_result(const std::string& id, bool cached, bool coalesced,
                  Value report) {
  Value v = Value::object();
  v.set("type", Value::str("result"));
  v.set("id", Value::str(id));
  v.set("cached", Value::boolean(cached));
  v.set("coalesced", Value::boolean(coalesced));
  v.set("report", std::move(report));
  return v;
}

Value make_pong() {
  Value v = Value::object();
  v.set("type", Value::str("pong"));
  v.set("version", Value::str(kProtocolVersion));
  return v;
}

std::string encode_frame(const std::string& payload) {
  std::string out = util::strf("%zu\n", payload.size());
  out += payload;
  out += '\n';
  return out;
}

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kFrame: return "frame";
    case FrameStatus::kNeedMore: return "need-more";
    case FrameStatus::kTooLarge: return "too-large";
    case FrameStatus::kMalformed: return "malformed";
  }
  return "?";
}

FrameStatus FrameDecoder::next(std::string* payload) {
  if (poisoned_) return poison_status_;
  auto poison = [&](FrameStatus why) {
    poisoned_ = true;
    poison_status_ = why;
    return why;
  };
  // Skip blank separator lines between line-framed payloads.
  size_t start = 0;
  while (start < buf_.size() &&
         (buf_[start] == '\n' || buf_[start] == '\r')) {
    ++start;
  }
  if (start > 0) buf_.erase(0, start);
  if (buf_.empty()) return FrameStatus::kNeedMore;

  const char first = buf_[0];
  if (std::isdigit(static_cast<unsigned char>(first)) != 0) {
    // Length-framed: "<decimal>\n<payload>\n".
    const size_t eol = buf_.find('\n');
    if (eol == std::string::npos) {
      // A header longer than 20 digits can never be a valid size.
      return buf_.size() > 20 ? poison(FrameStatus::kMalformed)
                              : FrameStatus::kNeedMore;
    }
    uint64_t len = 0;
    for (size_t i = 0; i < eol; ++i) {
      const char c = buf_[i];
      if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
        return poison(FrameStatus::kMalformed);
      }
      len = len * 10 + static_cast<uint64_t>(c - '0');
      if (len > (1ULL << 40)) return poison(FrameStatus::kTooLarge);
    }
    if (len > max_bytes_) return poison(FrameStatus::kTooLarge);
    if (buf_.size() < eol + 1 + len) return FrameStatus::kNeedMore;
    *payload = buf_.substr(eol + 1, static_cast<size_t>(len));
    buf_.erase(0, eol + 1 + static_cast<size_t>(len));
    return FrameStatus::kFrame;
  }
  if (first == '{') {
    // Line-framed: one newline-free JSON document per line.
    const size_t eol = buf_.find('\n');
    if (eol == std::string::npos) {
      return buf_.size() > max_bytes_ ? poison(FrameStatus::kTooLarge)
                                      : FrameStatus::kNeedMore;
    }
    if (eol > max_bytes_) return poison(FrameStatus::kTooLarge);
    *payload = buf_.substr(0, eol);
    buf_.erase(0, eol + 1);
    return FrameStatus::kFrame;
  }
  return poison(FrameStatus::kMalformed);
}

}  // namespace m3d::serve
