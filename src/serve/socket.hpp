// Minimal POSIX socket wrapper for the serve transport: RAII fds, TCP and
// Unix-domain listeners (TCP may bind port 0 and report the kernel-chosen
// port), blocking connect helpers, and frame I/O over a FrameDecoder.
// Writes use MSG_NOSIGNAL so a client that disconnected mid-stream surfaces
// as an error return, never a SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "serve/protocol.hpp"

namespace m3d::serve {

/// Move-only owned socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// shutdown(SHUT_RDWR): unblocks a thread blocked in recv on this fd
  /// (the server uses it to interrupt connection threads on stop()).
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (TCP, SO_REUSEADDR). port 0 asks the
/// kernel for an ephemeral port; *bound_port receives the actual one.
/// Returns an invalid Socket and fills *err on failure.
Socket listen_tcp(const std::string& host, int port, int* bound_port,
                  std::string* err);

/// Binds and listens on a Unix-domain socket path (unlinking a stale one).
Socket listen_unix(const std::string& path, std::string* err);

/// Blocking accept; invalid Socket on failure (e.g. listener closed).
Socket accept_conn(const Socket& listener);

Socket connect_tcp(const std::string& host, int port, std::string* err);
Socket connect_unix(const std::string& path, std::string* err);

/// Sends one length-framed payload; false when the peer is gone.
bool write_frame(const Socket& s, const std::string& payload);

/// Reads until `dec` yields one frame (or the peer closes / errors).
/// kFrame fills *payload; kNeedMore here means orderly EOF before a
/// complete frame (distinguishable because reads block otherwise).
FrameStatus read_frame(const Socket& s, FrameDecoder* dec,
                       std::string* payload);

}  // namespace m3d::serve
