#include "serve/server.hpp"

#include <unistd.h>

#include <atomic>
#include <utility>

#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strf.hpp"

namespace m3d::serve {

using util::json::Value;

Server::Server(ServerOptions opt, flow::WarmContext* warm)
    : opt_(std::move(opt)), service_(opt_.serve, warm) {}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  if (opt_.port < 0 && opt_.unix_path.empty()) {
    if (err != nullptr) *err = "no listener configured (TCP and Unix off)";
    return false;
  }
  if (opt_.port >= 0) {
    tcp_listener_ = listen_tcp(opt_.host, opt_.port, &bound_port_, err);
    if (!tcp_listener_.valid()) return false;
  }
  if (!opt_.unix_path.empty()) {
    unix_listener_ = listen_unix(opt_.unix_path, err);
    if (!unix_listener_.valid()) {
      tcp_listener_.close();
      return false;
    }
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (tcp_listener_.valid()) {
    threads_.emplace_back([this] { accept_loop(&tcp_listener_); });
  }
  if (unix_listener_.valid()) {
    threads_.emplace_back([this] { accept_loop(&unix_listener_); });
  }
  return true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [&] { return stopping_; });
}

void Server::request_shutdown() {
  const std::lock_guard<std::mutex> lock(mu_);
  stopping_ = true;
  stop_cv_.notify_all();
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    stop_cv_.notify_all();
  }
  // Closing the listeners makes blocked accept() calls return; shutting
  // down live connections makes blocked recv() calls return. The handler
  // threads then fall out of their loops on their own.
  tcp_listener_.shutdown_both();
  unix_listener_.shutdown_both();
  tcp_listener_.close();
  unix_listener_.close();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (Socket& c : conns_) c.shutdown_both();
  }
  for (;;) {
    std::vector<std::thread> batch;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      batch.swap(threads_);
    }
    if (batch.empty()) break;
    for (std::thread& t : batch) t.join();
  }
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
}

void Server::accept_loop(const Socket* listener) {
  for (;;) {
    Socket conn = accept_conn(*listener);
    if (!conn.valid()) return;  // listener closed (stop) or fatal error
    std::list<Socket>::iterator it;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      conns_.push_back(std::move(conn));
      it = std::prev(conns_.end());
      threads_.emplace_back([this, it] { handle_conn(it); });
    }
  }
}

void Server::handle_conn(std::list<Socket>::iterator conn_it) {
  const Socket& conn = *conn_it;
  FrameDecoder dec(opt_.max_frame_bytes);
  for (;;) {
    std::string payload;
    const FrameStatus st = read_frame(conn, &dec, &payload);
    if (st == FrameStatus::kNeedMore) break;  // orderly EOF
    if (st == FrameStatus::kTooLarge) {
      write_frame(conn, make_error("frame-too-large",
                                   util::strf("frame exceeds %zu bytes",
                                              opt_.max_frame_bytes))
                            .dump(-1));
      break;  // the stream is desynced; drop the connection
    }
    if (st == FrameStatus::kMalformed) {
      write_frame(conn,
                  make_error("malformed-frame",
                             "expected \"<len>\\n<json>\\n\" or a '{' line")
                      .dump(-1));
      break;
    }

    Value doc;
    std::string jerr;
    if (!util::json::parse(payload, &doc, &jerr)) {
      write_frame(conn, make_error("bad-json", jerr).dump(-1));
      continue;  // framing is intact; the connection can recover
    }
    const std::string type =
        doc.is_object() ? doc.string_or("type", "") : "";
    if (type == "ping") {
      write_frame(conn, make_pong().dump(-1));
    } else if (type == "stats") {
      write_frame(conn, service_.stats_json().dump(-1));
    } else if (type == "shutdown") {
      if (!opt_.allow_shutdown) {
        write_frame(conn,
                    make_error("forbidden", "shutdown disabled").dump(-1));
        continue;
      }
      Value ack = Value::object();
      ack.set("type", Value::str("shutting-down"));
      write_frame(conn, ack.dump(-1));
      request_shutdown();
      break;
    } else if (type == "run") {
      handle_run(conn, doc);
    } else {
      write_frame(conn,
                  make_error("unknown-type",
                             util::strf("unknown request type \"%s\"",
                                        type.c_str()),
                             "type")
                      .dump(-1));
    }
  }
  const std::lock_guard<std::mutex> lock(mu_);
  conns_.erase(conn_it);
}

void Server::handle_run(const Socket& conn, const Value& doc) {
  Request req;
  RequestError rerr;
  if (!parse_request(doc, &req, &rerr)) {
    write_frame(conn, make_error(rerr.code, rerr.message, rerr.field).dump(-1));
    return;
  }
  const std::string id = key_hex(request_key(req));

  // Progress events stream on this connection while the flow runs —
  // possibly emitted from another connection's thread when this request
  // coalesced. A failed write marks the peer gone: we stop streaming but
  // let the execution finish (the result still lands in the cache).
  std::atomic<bool> peer_gone{false};
  ProgressFn progress;
  if (req.progress) {
    progress = [this, &conn, &peer_gone, id](const Progress& p) {
      if (peer_gone.load(std::memory_order_relaxed)) return;
      if (!write_frame(conn,
                       make_progress(id, p.stage, p.index, p.wall_ms)
                           .dump(-1))) {
        peer_gone.store(true, std::memory_order_relaxed);
        util::count("serve.client_disconnect");
      }
    };
  }

  const Response resp = service_.run(req, progress);
  if (peer_gone.load(std::memory_order_relaxed)) return;

  switch (resp.status) {
    case Response::Status::kOk: {
      Value report;
      std::string jerr;
      if (!util::json::parse(resp.report_json, &report, &jerr)) {
        write_frame(conn, make_error("internal",
                                     util::strf("stored report unreadable: %s",
                                                jerr.c_str()))
                              .dump(-1));
        return;
      }
      write_frame(conn, make_result(id, resp.cached, resp.coalesced,
                                    std::move(report))
                            .dump(-1));
      break;
    }
    case Response::Status::kBusy:
      write_frame(conn,
                  make_busy(resp.retry_after_ms, resp.queue_depth).dump(-1));
      break;
    case Response::Status::kTimeout:
    case Response::Status::kError:
      write_frame(conn,
                  make_error(resp.error_code, resp.error_message).dump(-1));
      break;
  }
}

}  // namespace m3d::serve
