// Persistent response cache for m3d_serve: one JSON file per request key
// under a cache directory, so a repeated request is served without running
// the flow — across process restarts.
//
// Layout: <dir>/<16-hex-key>.json, each file a self-describing document
//
//   { "schema":  "m3d.serve_cache/v1",
//     "key":     "<16-hex>",
//     "request": { ...canonical request... },
//     "report":  { ...canonical run report... } }
//
// The canonical request is stored alongside the report and re-verified on
// every hit: a key collision (or a stale file from an older, incompatible
// request schema) reads as a miss, never as a wrong answer. Writes go
// through a temp file + rename in the same directory, so a crash mid-write
// leaves either the old entry or none — a reader never sees a torn file.
// Entries are immutable once written; the flow's determinism contract (same
// canonical request => byte-identical canonical report) is what makes the
// cache a pure memoization rather than a staleness hazard.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace m3d::serve {

class ResponseCache {
 public:
  /// `dir` is created on first put if missing; an empty dir disables the
  /// cache (every get misses, every put is dropped).
  explicit ResponseCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// The canonical report stored for `key`, or nullopt on miss. A file
  /// whose stored request does not byte-match `canonical_request` (key
  /// collision / schema drift) or that fails to parse is treated as a miss.
  std::optional<std::string> get(uint64_t key,
                                 const std::string& canonical_request) const;

  /// Stores `report_json` (the canonical report document) for `key`.
  /// Returns false on I/O failure; the cache never throws.
  bool put(uint64_t key, const std::string& canonical_request,
           const std::string& report_json) const;

  /// Path of the entry file for `key` (for tests and ops tooling).
  std::string entry_path(uint64_t key) const;

 private:
  std::string dir_;
};

}  // namespace m3d::serve
