// Persistent response cache for m3d_serve: the outermost layer of the
// content-addressed stage-artifact store (src/store), holding finished
// canonical run reports under stage "report" so a repeated request is
// served without running the flow — across process restarts.
//
// The store key *string* is the canonical request document itself; its
// FNV-1a-64 hash is exactly serve's request_key (serve/protocol.hpp uses
// the same hash over the same bytes), so entries land at
// <dir>/report-<16-hex-key>.m3ds and the wire-visible key hex never
// changed when the cache migrated from its bespoke JSON files onto the
// store. Every hit re-verifies the stored canonical request byte-for-byte:
// a key collision or schema drift reads as a miss, never as a wrong
// answer; a torn or corrupted entry also reads as a miss and is evicted on
// sight (the next put self-heals it). Writes are temp-file + rename, so a
// crash mid-write leaves either the old entry or none.
//
// Counters: serve.cache_miss (plain absent-entry miss), serve.cache_corrupt
// (unreadable/torn entry, evicted — the store logs the evicted filename),
// serve.cache_collision (valid entry for a different request),
// serve.cache_store (successful put). Hits are counted by the service
// (serve.cache_hit). The shared store.* counters tick underneath as well.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "store/store.hpp"

namespace m3d::serve {

class ResponseCache {
 public:
  /// `dir` is created on first put if missing; an empty dir disables the
  /// cache (every get misses, every put is dropped).
  explicit ResponseCache(std::string dir);

  bool enabled() const { return store_.enabled(); }
  const std::string& dir() const { return store_.dir(); }

  /// The canonical report stored for `key`, or nullopt on miss. An entry
  /// whose stored request does not byte-match `canonical_request` (key
  /// collision / schema drift) or that fails verification is treated as a
  /// miss; corrupt entries are evicted so the next put rewrites them.
  std::optional<std::string> get(uint64_t key,
                                 const std::string& canonical_request) const;

  /// Stores `report_json` (the canonical report document) for `key`.
  /// `key` must equal fnv1a64(canonical_request) — it is derived, not
  /// stored. Returns false on I/O failure; the cache never throws.
  bool put(uint64_t key, const std::string& canonical_request,
           const std::string& report_json) const;

  /// Path of the entry file for `key` (for tests and ops tooling).
  std::string entry_path(uint64_t key) const;

  /// The underlying artifact store (stage "report"); flows sharing the
  /// directory store their own stages alongside the reports.
  const store::Store& store() const { return store_; }

 private:
  store::Store store_;
};

}  // namespace m3d::serve
