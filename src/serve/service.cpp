#include "serve/service.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "flow/report.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strf.hpp"
#include "util/trace.hpp"

namespace m3d::serve {

Service::Service(ServeOptions opt, flow::WarmContext* warm)
    : opt_(std::move(opt)), warm_(warm), cache_(opt_.store_dir) {}

Service::~Service() = default;

void Service::bump_queue_gauge() {
  // Caller holds mu_. The registry has its own lock; the nesting order is
  // always mu_ -> registry, never the reverse.
  util::set_gauge("serve.queue_depth",
                  static_cast<double>(executing_ + waiting_));
}

Service::Stats Service::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.executing = executing_;
  s.waiting = waiting_;
  return s;
}

util::json::Value Service::stats_json() const {
  const Stats s = stats();
  using util::json::Value;
  Value v = Value::object();
  v.set("type", Value::str("stats"));
  v.set("admitted", Value::number(static_cast<double>(s.admitted)));
  v.set("rejected", Value::number(static_cast<double>(s.rejected)));
  v.set("coalesced", Value::number(static_cast<double>(s.coalesced)));
  v.set("cache_hits", Value::number(static_cast<double>(s.cache_hits)));
  v.set("flow_runs", Value::number(static_cast<double>(s.flow_runs)));
  v.set("timeouts", Value::number(static_cast<double>(s.timeouts)));
  v.set("errors", Value::number(static_cast<double>(s.errors)));
  v.set("executing", Value::number(s.executing));
  v.set("waiting", Value::number(s.waiting));
  return v;
}

Response Service::run(const Request& req_in, const ProgressFn& progress) {
  const Request req = resolve_defaults(req_in);
  const uint64_t key = request_key(req);
  const std::string canonical = request_canonical(req);

  // 1. Persistent cache: repeats — including across restarts — never run
  // or queue.
  if (std::optional<std::string> hit = cache_.get(key, canonical)) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cache_hits;
    }
    util::count("serve.cache_hit");
    Response r;
    r.status = Response::Status::kOk;
    r.key = key;
    r.report_json = std::move(*hit);
    r.cached = true;
    return r;
  }

  // 2. Registry: coalesce onto an identical in-flight request, or register
  // as the owner — subject to the admission bound.
  std::shared_ptr<Inflight> entry;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      entry = it->second;
      ++stats_.coalesced;
    } else {
      if (executing_ + waiting_ >= opt_.max_inflight + opt_.max_queue) {
        ++stats_.rejected;
        util::count("serve.reject");
        Response r;
        r.status = Response::Status::kBusy;
        r.key = key;
        r.retry_after_ms = opt_.retry_after_ms;
        r.queue_depth = executing_ + waiting_;
        return r;
      }
      entry = std::make_shared<Inflight>();
      inflight_[key] = entry;
      ++waiting_;
      ++stats_.admitted;
      bump_queue_gauge();
      owner = true;
    }
  }

  if (owner) {
    if (progress) {
      const std::lock_guard<std::mutex> elock(entry->mu);
      entry->listeners.push_back(std::make_shared<ProgressFn>(progress));
    }
    util::count("serve.admit");
    return run_owner(req, key, canonical, entry, progress);
  }

  // Coalesced path: subscribe, then wait for the owner's terminal result.
  util::count("serve.coalesce");
  std::shared_ptr<ProgressFn> slot;
  if (progress) {
    slot = std::make_shared<ProgressFn>(progress);
    const std::lock_guard<std::mutex> elock(entry->mu);
    entry->listeners.push_back(slot);
  }
  if (opt_.hook_after_attach) opt_.hook_after_attach(key);
  {
    std::unique_lock<std::mutex> elock(entry->mu);
    const bool done = entry->cv.wait_for(
        elock, std::chrono::milliseconds(opt_.timeout_ms),
        [&] { return entry->done; });
    if (done) {
      Response r = entry->result;
      r.coalesced = true;
      return r;
    }
    // Deadline expired: detach our listener slot (the owner keeps running
    // and will still cache the result) and report the timeout.
    for (std::shared_ptr<ProgressFn>& l : entry->listeners) {
      if (l == slot) l = nullptr;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.timeouts;
  }
  util::count("serve.timeout");
  Response r;
  r.status = Response::Status::kTimeout;
  r.key = key;
  r.error_code = "timeout";
  r.error_message = util::strf("result not ready within %lld ms",
                               static_cast<long long>(opt_.timeout_ms));
  return r;
}

Response Service::run_owner(const Request& req, uint64_t key,
                            const std::string& canonical,
                            const std::shared_ptr<Inflight>& entry,
                            const ProgressFn& progress) {
  (void)progress;  // already subscribed as a listener by run()
  if (opt_.hook_after_register) opt_.hook_after_register(key);

  // Acquire an execution slot (bounded wait).
  {
    std::unique_lock<std::mutex> lock(mu_);
    const bool got = slot_cv_.wait_for(
        lock, std::chrono::milliseconds(opt_.timeout_ms),
        [&] { return executing_ < opt_.max_inflight; });
    if (!got) {
      --waiting_;
      ++stats_.timeouts;
      inflight_.erase(key);
      bump_queue_gauge();
      lock.unlock();
      util::count("serve.timeout");
      Response r;
      r.status = Response::Status::kTimeout;
      r.key = key;
      r.error_code = "timeout";
      r.error_message =
          util::strf("no execution slot within %lld ms",
                     static_cast<long long>(opt_.timeout_ms));
      publish(entry, key, r);
      return r;
    }
    --waiting_;
    ++executing_;
    bump_queue_gauge();
  }

  Response r = execute(req, key, canonical, entry);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    --executing_;
    inflight_.erase(key);
    bump_queue_gauge();
    if (r.status == Response::Status::kOk) {
      ++stats_.flow_runs;
    } else {
      ++stats_.errors;
    }
    slot_cv_.notify_all();
  }
  publish(entry, key, r);
  return r;
}

Response Service::execute(const Request& req, uint64_t key,
                          const std::string& canonical,
                          const std::shared_ptr<Inflight>& entry) {
  const util::ScopedMsObserver latency("serve.request_ms");

  // Ops/test knob: hold the slot before running (deterministic overload
  // windows for the CI smoke script). Bounded by kMaxHoldMs at parse time.
  if (req.hold_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(req.hold_ms));
  }

  std::optional<obs::ScopedTraceEnable> trace_window;
  std::optional<obs::ScopedFlow> attribution;
  if (opt_.trace) {
    trace_window.emplace();
    attribution.emplace(obs::register_flow(
        util::strf("serve %s %s", gen::to_string(req.bench),
                   tech::to_string(req.style))));
  }

  flow::FlowOptions fopt;
  fopt.bench = req.bench;
  fopt.node = req.node;
  fopt.style = req.style;
  fopt.clock_ns = req.clock_ns;
  fopt.seed = req.seed;
  fopt.scale_shift = req.scale_shift;
  fopt.target_util = req.target_util;
  fopt.check_level = req.check_level;
  fopt.trace = opt_.trace;
  // Same directory as the response cache: the flow reuses stored stage
  // artifacts (netlist, placement) even when the full-report lookup missed.
  fopt.store_dir = opt_.store_dir;
  fopt.stage_observer = [entry, idx = 0](const flow::StageReport& sr) mutable {
    const Progress p{sr.name, idx++, sr.wall_ms};
    const std::lock_guard<std::mutex> elock(entry->mu);
    for (const std::shared_ptr<ProgressFn>& l : entry->listeners) {
      if (l != nullptr) (*l)(p);
    }
  };

  Response r;
  r.key = key;
  try {
    const flow::FlowResult fr = warm_->run(fopt);
    r.status = Response::Status::kOk;
    r.report_json = report::to_canonical_json(fr).dump(-1);
    cache_.put(key, canonical, r.report_json);
  } catch (const std::exception& e) {
    util::error(util::strf("serve: flow for key %s failed: %s",
                           key_hex(key).c_str(), e.what()));
    util::count("serve.errors");
    r.status = Response::Status::kError;
    r.error_code = "flow-failed";
    r.error_message = e.what();
  }
  return r;
}

void Service::publish(const std::shared_ptr<Inflight>& entry, uint64_t key,
                      Response terminal) {
  (void)key;
  const std::lock_guard<std::mutex> elock(entry->mu);
  entry->result = std::move(terminal);
  entry->done = true;
  entry->listeners.clear();
  entry->cv.notify_all();
}

}  // namespace m3d::serve
