// Transport-independent serving core: admission control, request
// coalescing, per-request timeouts and the persistent response cache,
// executing validated Requests (serve/protocol.hpp) on the warm flow state
// (flow/warm.hpp). The socket server (serve/server.hpp) is a thin framing
// shell around one Service; unit tests drive Service directly.
//
// Request lifecycle (Service::run, one blocking call per request):
//
//   cache?  ──hit──────────────────────────────► result (cached=true)
//     │miss
//   registry?  ──same key in flight──► attach (coalesce): receive the
//     │                                owner's progress + result copy
//     │no
//   admission:  executing + waiting >= max_inflight + max_queue
//     │              └──► deterministic "busy" (retry_after_ms), never a
//     │                   hang — overload sheds load instead of queueing it
//   wait for an execution slot (bounded by timeout_ms; expiry → timeout
//     │                         error, entry withdrawn)
//   execute run_flow on the warm context, streaming one progress event per
//   stage to every attached listener; canonicalize the report; cache it;
//   publish to listeners; reply.
//
// Determinism contract: identical requests (same canonical form) always
// yield byte-identical canonical report JSON, whether computed, coalesced
// or cached — the flow's serial-vs-parallel bit-identity guarantee extends
// end-to-end through the service.
//
// Timeouts are deadline-based on std::chrono::steady_clock (never the wall
// clock). A request that times out *waiting* is withdrawn; once a flow is
// executing it runs to completion (flows are not preemptible) and still
// populates the cache — the timed-out client just stops waiting.
//
// Observability: serve.admit / serve.reject / serve.coalesce /
// serve.cache_hit / serve.cache_store / serve.timeout / serve.flow_runs /
// serve.errors counters, a serve.queue_depth gauge and a serve.request_ms
// histogram in the global MetricsRegistry, plus a per-Service Stats
// snapshot (tests assert on Stats so parallel suites cannot interfere).
// With ServeOptions::trace, each executed request registers an obs flow
// ("serve <bench> <style>") and runs under obs::ScopedFlow attribution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "flow/warm.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"

namespace m3d::serve {

struct ServeOptions {
  /// Flows executing concurrently. Each flow itself parallelizes on the
  /// exec pool, so a small number saturates the machine.
  int max_inflight = 2;
  /// Admitted requests allowed to wait for a slot beyond max_inflight;
  /// anything past that bound is rejected with "busy" immediately.
  int max_queue = 8;
  /// Deadline for queue-slot waits and coalesced-result waits, ms.
  int64_t timeout_ms = 120000;
  /// Retry hint carried in "busy" replies, ms.
  int64_t retry_after_ms = 250;
  /// Artifact-store directory (src/store): the response cache is its
  /// outermost layer, and executed flows store/reuse their stage artifacts
  /// (libraries, netlists, placements) in the same directory. Empty
  /// disables persistence.
  std::string store_dir;
  /// Trace each executed request (obs::ScopedFlow attribution).
  bool trace = false;
  /// Test seams (default no-ops): invoked by the owner right after its
  /// entry is registered (before slot wait), and by a coalescing request
  /// right after it attached (before blocking). Tests use these to build
  /// deterministic interleavings; production leaves them empty.
  std::function<void(uint64_t key)> hook_after_register;
  std::function<void(uint64_t key)> hook_after_attach;
};

/// One stage-boundary progress event (index is 0-based stage order).
struct Progress {
  std::string stage;
  int index = 0;
  double wall_ms = 0.0;
};
using ProgressFn = std::function<void(const Progress&)>;

struct Response {
  enum class Status { kOk, kBusy, kTimeout, kError };
  Status status = Status::kError;
  uint64_t key = 0;
  /// kOk: the canonical run-report JSON document (compact). Byte-identical
  /// across computed / coalesced / cached paths for one canonical request.
  std::string report_json;
  bool cached = false;
  bool coalesced = false;
  /// kBusy.
  int64_t retry_after_ms = 0;
  int queue_depth = 0;
  /// kError / kTimeout.
  std::string error_code;
  std::string error_message;
};

class Service {
 public:
  Service(ServeOptions opt, flow::WarmContext* warm);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Executes one validated request, blocking until a terminal Response.
  /// `progress` (may be empty) receives stage-boundary events; it is called
  /// from the executing thread (possibly another request's thread, when
  /// coalesced) and must be fast and must not call back into the Service.
  /// Thread-safe; any number of concurrent callers.
  Response run(const Request& req, const ProgressFn& progress);

  /// Monotonic per-Service counters (a consistent snapshot).
  struct Stats {
    int64_t admitted = 0;     // entered the execution path (owner role)
    int64_t rejected = 0;     // "busy" replies
    int64_t coalesced = 0;    // attached to an in-flight execution
    int64_t cache_hits = 0;
    int64_t flow_runs = 0;    // flows actually executed
    int64_t timeouts = 0;
    int64_t errors = 0;
    int executing = 0;        // currently running flows
    int waiting = 0;          // currently queued for a slot
  };
  Stats stats() const;
  util::json::Value stats_json() const;

  const ResponseCache& cache() const { return cache_; }
  const ServeOptions& options() const { return opt_; }

 private:
  /// Shared state of one in-flight execution; owners publish, coalescers
  /// subscribe. Guarded by its own mutex so progress fan-out never holds
  /// the registry lock.
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response result;  // valid once done
    /// Listener slots; a slot holds nullptr after its waiter detached.
    std::vector<std::shared_ptr<ProgressFn>> listeners;
  };

  Response run_owner(const Request& req, uint64_t key,
                     const std::string& canonical,
                     const std::shared_ptr<Inflight>& entry,
                     const ProgressFn& progress);
  Response execute(const Request& req, uint64_t key,
                   const std::string& canonical,
                   const std::shared_ptr<Inflight>& entry);
  void publish(const std::shared_ptr<Inflight>& entry, uint64_t key,
               Response terminal);
  void bump_queue_gauge();

  ServeOptions opt_;
  flow::WarmContext* warm_;  // not owned
  ResponseCache cache_;

  mutable std::mutex mu_;  // registry + admission accounting + stats
  std::condition_variable slot_cv_;
  std::map<uint64_t, std::shared_ptr<Inflight>> inflight_;
  int executing_ = 0;
  int waiting_ = 0;
  Stats stats_;
};

}  // namespace m3d::serve
