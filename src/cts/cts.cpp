#include "cts/cts.hpp"

#include <algorithm>
#include <functional>

#include "util/log.hpp"
#include "util/strf.hpp"

namespace m3d::cts {
namespace {

struct Sink {
  circuit::PinRef pin;
  geom::Pt pos;
};

struct Node {
  circuit::InstId buf = circuit::kInvalid;
  geom::Pt pos;
  int depth = 1;
};

}  // namespace

CtsResult build_clock_tree(circuit::Netlist* nl, const liberty::Library& lib,
                           const CtsOptions& opt) {
  CtsResult res;
  const circuit::NetId clk = nl->clock_net();
  if (clk == circuit::kInvalid) return res;

  // Collect the DFF clock pins currently hanging off the clock net.
  std::vector<Sink> sinks;
  for (const auto& pin : nl->net(clk).sinks) {
    if (pin.inst == circuit::kInvalid) continue;
    const auto& inst = nl->inst(pin.inst);
    if (inst.dead || !inst.sequential()) continue;
    sinks.push_back({pin, inst.pos});
  }
  res.sinks = static_cast<int>(sinks.size());
  if (sinks.size() < 2) return res;

  // Recursive geometric bisection; leaves get one buffer per cluster,
  // internal levels get one buffer per pair of children.
  std::function<Node(size_t, size_t, bool)> build = [&](size_t lo, size_t hi,
                                                        bool split_x) -> Node {
    const size_t count = hi - lo;
    geom::Pt centroid{0, 0};
    for (size_t i = lo; i < hi; ++i) centroid += sinks[i].pos;
    centroid = centroid * (1.0 / static_cast<double>(count));

    Node node;
    node.pos = centroid;
    const circuit::NetId in = nl->new_net();
    const circuit::NetId out = nl->new_net();
    node.buf = nl->add_gate(cells::Func::kBuf, {in}, {out}, opt.buffer_drive);
    auto& binst = nl->inst(node.buf);
    binst.from_optimizer = true;
    binst.pos = centroid;
    binst.placed = true;
    nl->resize_inst(node.buf, lib, opt.buffer_drive);
    if (opt.die != nullptr) {
      auto& bound = nl->inst(node.buf);
      bound.pos = place::snap_to_row(
          *opt.die, bound.pos,
          bound.libcell != nullptr ? bound.libcell->width_um : 0.0);
    }
    ++res.buffers_added;

    if (count <= static_cast<size_t>(opt.max_sinks_per_buffer)) {
      for (size_t i = lo; i < hi; ++i) nl->move_sink(sinks[i].pin, out);
      return node;
    }
    std::sort(sinks.begin() + static_cast<long>(lo),
              sinks.begin() + static_cast<long>(hi),
              [&](const Sink& a, const Sink& b) {
                return split_x ? a.pos.x < b.pos.x : a.pos.y < b.pos.y;
              });
    const size_t mid = lo + count / 2;
    const Node left = build(lo, mid, !split_x);
    const Node right = build(mid, hi, !split_x);
    nl->move_sink({left.buf, 0}, out);
    nl->move_sink({right.buf, 0}, out);
    node.depth = 1 + std::max(left.depth, right.depth);
    return node;
  };

  const Node root = build(0, sinks.size(), true);
  // The root buffer hangs off the (ideal) clock source net.
  nl->move_sink({root.buf, 0}, clk);
  res.levels = root.depth;
  util::debug(util::strf("cts: %d sinks, %d buffers, %d levels", res.sinks,
                         res.buffers_added, res.levels));
  return res;
}

}  // namespace m3d::cts
