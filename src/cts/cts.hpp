// Clock tree synthesis: a buffered, geometry-balanced clock distribution
// tree over the DFF clock pins (recursive median bisection — an H-tree-like
// topology). The tree's buffers and nets are ordinary netlist objects, so
// routing, extraction and power analysis see the clock network exactly like
// the paper's flow does; timing keeps the ideal-clock (zero-skew) view.
//
// Because T-MI halves the die, its clock tree is shorter and lighter — a
// real contributor to the paper's net-power gap.
#pragma once

#include "circuit/netlist.hpp"
#include "liberty/library.hpp"
#include "place/place.hpp"

namespace m3d::cts {

struct CtsOptions {
  int max_sinks_per_buffer = 24;
  int buffer_drive = 4;
  /// When set, clock buffers are snapped onto the row grid inside this die
  /// (place::snap_to_row) so CTS preserves placement legality.
  const place::Die* die = nullptr;
};

struct CtsResult {
  int buffers_added = 0;
  int levels = 0;
  int sinks = 0;  // DFF clock pins served
};

/// Builds the clock tree in place. Requires placement (buffer positions are
/// derived from sink centroids). No-op when the design has no clock or no
/// sequential cells.
CtsResult build_clock_tree(circuit::Netlist* nl, const liberty::Library& lib,
                           const CtsOptions& opt = {});

}  // namespace m3d::cts
