// Cell layout model and parasitic extraction.
//
// 2D cells follow the Nangate template: one PMOS row (top) and one NMOS row
// (bottom) inside a 1.4um-tall cell, gates on vertical poly columns at a
// fixed pitch, internal routing on M1, rails at the cell edges.
//
// The T-MI fold (paper Fig 2) moves the PMOS row to the bottom tier and the
// NMOS row to the top tier. Every net that spans both device types then
// crosses tiers through a CTB - MB1 - MIV - M1 - CT stack. MIVs occupy
// dedicated columns on the top tier between poly columns; when a complex cell
// has more tier-crossing nets than nearby free MIV sites, nets take detours,
// which is why folded DFF parasitics come out *worse* than 2D (paper
// Table 1) while simple cells come out better.
//
// Extraction is pattern-based: every wire segment, contact and MIV
// contributes R and C from per-material unit values. The top-tier silicon can
// be treated as dielectric (tier coupling fully counted; the paper's "3D")
// or as a conductor (coupling mostly screened; "3D-c").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cells/spec.hpp"
#include "tech/tech.hpp"

namespace m3d::cells {

/// Top-tier silicon model for extraction of folded cells (paper Section 3.2).
enum class SiliconModel { kDielectric, kConductor };

struct NetParasitic {
  double r_kohm = 0.0;
  double c_ff_dielectric = 0.0;
  double c_ff_conductor = 0.0;

  double c_ff(SiliconModel m) const {
    return m == SiliconModel::kDielectric ? c_ff_dielectric : c_ff_conductor;
  }
};

/// Extraction constants for the pattern extractor, in 45nm-node units.
/// 7nm layouts reuse the 45nm geometry and apply the paper's published
/// scale factors (R x7.7, C x0.156, dimensions x0.156) exactly as the
/// paper's supplement S3 does.
struct ExtractRules {
  double poly_pitch_um = 0.19;
  double max_finger_um = 1.0;          // device width per finger
  double poly_r_kohm_um = 0.20;        // ~10 Ohm/sq at 50nm width
  double poly_c_ff_um = 0.08;
  double contact_r_kohm = 0.015;
  double contact_c_ff = 0.02;          // diffusion contact
  double gate_contact_c_ff = 0.02;     // poly contact
  double m1_stub_um = 0.03;            // landing stubs around vias
  double poly_stub_um = 0.04;          // per-tier gate stub after folding
  double steiner_per_term = 0.25;      // extra route length per extra terminal
  double detour_poly_c_factor = 0.5;   // narrow detour poly has reduced cap
  double rail_coupling_ff = 0.01;      // folded VDD/VSS overlap (paper 3.1)
  double miv_coupling_ff = 0.02;       // tier coupling per MIV (dielectric)
  double wire_coupling_ff_um = 0.015;  // tier coupling per um of overlap
  double conductor_screen = 0.3;       // fraction of coupling kept in 3D-c
};

struct DeviceShape {
  bool pmos = false;
  double x_um = 0.0;      // left edge of the device's column group
  double w_um = 0.0;      // drawn width
  int fingers = 1;
  int tier = 0;           // 0 = bottom (2D: only tier), 1 = top
};

struct MivShape {
  double x_um = 0.0;
  std::string net;
};

struct CellLayout {
  std::string cell_name;
  bool folded = false;
  double width_um = 0.0;
  double height_um = 0.0;
  std::vector<DeviceShape> devices;
  std::vector<MivShape> mivs;
  // Per-net lumped parasitics (pins + internal nets + rails).
  std::map<std::string, NetParasitic> nets;

  double area_um2() const { return width_um * height_um; }
  int num_mivs() const { return static_cast<int>(mivs.size()); }

  /// Totals over all nets — the paper's Table 1 numbers.
  double total_r_kohm() const;
  double total_c_ff(SiliconModel m) const;
};

/// Generates the 2D layout of `spec` and extracts its parasitics.
CellLayout layout_2d(const CellSpec& spec, const tech::Tech& tech,
                     const ExtractRules& rules = {});

/// Folds `spec` into a T-MI cell (PMOS -> bottom tier, NMOS -> top tier,
/// MIVs inserted) and extracts its parasitics. Transistor sizes and x-order
/// are preserved, per paper Section 3.2.
CellLayout fold_tmi(const CellSpec& spec, const tech::Tech& tech,
                    const ExtractRules& rules = {});

}  // namespace m3d::cells
