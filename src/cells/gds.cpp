#include "cells/gds.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace m3d::cells {
namespace {

// GDSII record types.
constexpr uint8_t kHeader = 0x00, kBgnLib = 0x01, kLibName = 0x02,
                  kUnits = 0x03, kEndLib = 0x04, kBgnStr = 0x05,
                  kStrName = 0x06, kEndStr = 0x07, kBoundary = 0x08,
                  kLayer = 0x0D, kDatatype = 0x0E, kXy = 0x10, kEndEl = 0x11;
// Data types.
constexpr uint8_t kNoData = 0x00, kInt16 = 0x02, kInt32 = 0x03, kReal8 = 0x05,
                  kAscii = 0x06;

constexpr double kDbuUm = 0.0005;  // database unit: 0.5 nm

/// GDSII 8-byte real: sign bit, excess-64 base-16 exponent, 7-byte mantissa.
void push_real8(std::vector<uint8_t>* out, double v) {
  uint8_t bytes[8] = {};
  if (v != 0.0) {
    const bool neg = v < 0;
    double mag = std::abs(v);
    int exp16 = 0;
    while (mag >= 1.0) {
      mag /= 16.0;
      ++exp16;
    }
    while (mag < 1.0 / 16.0) {
      mag *= 16.0;
      --exp16;
    }
    bytes[0] = static_cast<uint8_t>((neg ? 0x80 : 0x00) | ((exp16 + 64) & 0x7F));
    for (int i = 1; i < 8; ++i) {
      mag *= 256.0;
      const int b = static_cast<int>(mag);
      bytes[i] = static_cast<uint8_t>(b);
      mag -= b;
    }
  }
  out->insert(out->end(), bytes, bytes + 8);
}

void push_i16(std::vector<uint8_t>* out, int16_t v) {
  out->push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>(v & 0xFF));
}

void push_i32(std::vector<uint8_t>* out, int32_t v) {
  out->push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>(v & 0xFF));
}

}  // namespace

GdsWriter::GdsWriter(const std::string& libname) {
  record_i16(kHeader, {600});
  // BGNLIB: modification + access timestamps (fixed for reproducibility).
  record_i16(kBgnLib, {2013, 5, 29, 0, 0, 0, 2013, 5, 29, 0, 0, 0});
  record_str(kLibName, libname);
  // UNITS: user units per dbu, meters per dbu.
  std::vector<uint8_t> units;
  push_real8(&units, kDbuUm / 1.0);       // 1 user unit = 1 um
  push_real8(&units, kDbuUm * 1e-6);      // dbu in meters
  record(kUnits, kReal8, units);
}

void GdsWriter::record(uint8_t rectype, uint8_t datatype,
                       const std::vector<uint8_t>& payload) {
  const uint16_t len = static_cast<uint16_t>(4 + payload.size());
  body_.push_back(static_cast<uint8_t>((len >> 8) & 0xFF));
  body_.push_back(static_cast<uint8_t>(len & 0xFF));
  body_.push_back(rectype);
  body_.push_back(datatype);
  body_.insert(body_.end(), payload.begin(), payload.end());
}

void GdsWriter::record_i16(uint8_t rectype, const std::vector<int16_t>& values) {
  std::vector<uint8_t> payload;
  for (int16_t v : values) push_i16(&payload, v);
  record(rectype, kInt16, payload);
}

void GdsWriter::record_i32(uint8_t rectype, const std::vector<int32_t>& values) {
  std::vector<uint8_t> payload;
  for (int32_t v : values) push_i32(&payload, v);
  record(rectype, kInt32, payload);
}

void GdsWriter::record_str(uint8_t rectype, const std::string& s) {
  std::vector<uint8_t> payload(s.begin(), s.end());
  if (payload.size() % 2) payload.push_back(0);  // pad to even length
  record(rectype, kAscii, payload);
}

void GdsWriter::rect(int layer, double x, double y, double w, double h) {
  record(kBoundary, kNoData);
  record_i16(kLayer, {static_cast<int16_t>(layer)});
  record_i16(kDatatype, {0});
  auto dbu = [](double um) { return static_cast<int32_t>(std::lround(um / kDbuUm)); };
  record_i32(kXy, {dbu(x), dbu(y), dbu(x + w), dbu(y), dbu(x + w), dbu(y + h),
                   dbu(x), dbu(y + h), dbu(x), dbu(y)});
  record(kEndEl, kNoData);
}

void GdsWriter::add_cell(const CellSpec& spec, const CellLayout& layout) {
  record_i16(kBgnStr, {2013, 5, 29, 0, 0, 0, 2013, 5, 29, 0, 0, 0});
  record_str(kStrName, spec.name + (layout.folded ? "_TMI" : "_2D"));

  const double h = layout.height_um;
  const double gate_w = 0.05 * (h / 1.4);  // drawn gate length, node-scaled
  for (const auto& d : layout.devices) {
    // Diffusion strip + poly gate columns, positioned by row/tier.
    const double diff_h = std::min(0.4 * h, d.w_um / 2.0);
    double y;
    if (!layout.folded) {
      y = d.pmos ? 0.62 * h : 0.18 * h;
    } else {
      y = d.pmos ? 0.58 * h : 0.12 * h;
    }
    const int diff_layer = (!layout.folded || d.pmos) ? 1 : 2;
    const int poly_layer = (!layout.folded || d.pmos) ? 10 : 11;
    const double dw = 0.14 * d.fingers * (h / 1.4);
    rect(diff_layer, d.x_um - dw / 2, y, dw, diff_h);
    for (int f = 0; f < d.fingers; ++f) {
      rect(poly_layer, d.x_um - dw / 2 + (f + 0.5) * dw / d.fingers - gate_w / 2,
           y - 0.05 * h, gate_w, diff_h + 0.1 * h);
    }
  }
  // Rails: MB1 (folded) or M1 strips.
  const double rail_h = 0.05 * h;
  rect(layout.folded ? 30 : 31, 0, h - rail_h, layout.width_um, rail_h);
  rect(31, 0, 0, layout.width_um, rail_h);
  // MIVs.
  const double miv = 0.07 * (h / 1.4);
  for (const auto& m : layout.mivs) {
    rect(40, m.x_um - miv / 2, h / 2 - miv / 2, miv, miv);
  }
  record(kEndStr, kNoData);
  ++num_cells_;
}

std::vector<uint8_t> GdsWriter::finish() const {
  std::vector<uint8_t> out = body_;
  // ENDLIB.
  out.push_back(0);
  out.push_back(4);
  out.push_back(kEndLib);
  out.push_back(kNoData);
  return out;
}

bool GdsWriter::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const auto data = finish();
  const size_t n = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return n == data.size();
}

bool write_library_gds(const std::string& path, const tech::Tech& tech) {
  GdsWriter gds;
  auto emit = [&](Func f, int d) {
    const CellSpec spec = make_spec(f, d);
    const CellLayout layout =
        tech.is_3d() ? fold_tmi(spec, tech) : layout_2d(spec, tech);
    gds.add_cell(spec, layout);
  };
  for (Func f : all_comb_funcs()) {
    for (int d : drive_options(f)) emit(f, d);
  }
  for (int d : drive_options(Func::kDff)) emit(Func::kDff, d);
  return gds.save(path);
}

}  // namespace m3d::cells
