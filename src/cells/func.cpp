#include "cells/func.hpp"

#include <cassert>

namespace m3d::cells {

const char* to_string(Func func) {
  switch (func) {
    case Func::kInv: return "INV";
    case Func::kBuf: return "BUF";
    case Func::kNand2: return "NAND2";
    case Func::kNand3: return "NAND3";
    case Func::kNand4: return "NAND4";
    case Func::kNor2: return "NOR2";
    case Func::kNor3: return "NOR3";
    case Func::kNor4: return "NOR4";
    case Func::kAnd2: return "AND2";
    case Func::kAnd3: return "AND3";
    case Func::kAnd4: return "AND4";
    case Func::kOr2: return "OR2";
    case Func::kOr3: return "OR3";
    case Func::kOr4: return "OR4";
    case Func::kXor2: return "XOR2";
    case Func::kXnor2: return "XNOR2";
    case Func::kMux2: return "MUX2";
    case Func::kAoi21: return "AOI21";
    case Func::kOai21: return "OAI21";
    case Func::kAoi22: return "AOI22";
    case Func::kOai22: return "OAI22";
    case Func::kHa: return "HA";
    case Func::kFa: return "FA";
    case Func::kDff: return "DFF";
  }
  return "?";
}

bool func_from_string(const std::string& name, Func* out) {
  for (Func f : all_comb_funcs()) {
    if (name == to_string(f)) {
      *out = f;
      return true;
    }
  }
  if (name == to_string(Func::kDff)) {
    *out = Func::kDff;
    return true;
  }
  return false;
}

std::vector<std::string> input_pins(Func func) {
  switch (func) {
    case Func::kInv:
    case Func::kBuf: return {"A"};
    case Func::kNand2:
    case Func::kNor2:
    case Func::kAnd2:
    case Func::kOr2:
    case Func::kXor2:
    case Func::kXnor2:
    case Func::kHa: return {"A", "B"};
    case Func::kNand3:
    case Func::kNor3:
    case Func::kAnd3:
    case Func::kOr3: return {"A", "B", "C"};
    case Func::kNand4:
    case Func::kNor4:
    case Func::kAnd4:
    case Func::kOr4: return {"A", "B", "C", "D"};
    case Func::kMux2: return {"A", "B", "S"};
    case Func::kAoi21:
    case Func::kOai21: return {"A1", "A2", "B"};
    case Func::kAoi22:
    case Func::kOai22: return {"A1", "A2", "B1", "B2"};
    case Func::kFa: return {"A", "B", "CI"};
    case Func::kDff: return {"D", "CK"};
  }
  return {};
}

std::vector<std::string> output_pins(Func func) {
  switch (func) {
    case Func::kHa:
    case Func::kFa: return {"S", "CO"};
    case Func::kDff: return {"Q"};
    default: return {"Z"};
  }
}

int num_inputs(Func func) { return static_cast<int>(input_pins(func).size()); }

bool is_sequential(Func func) { return func == Func::kDff; }

std::vector<uint64_t> truth_table(Func func) {
  auto make = [&](auto&& f, int nout) {
    const int n = num_inputs(func);
    std::vector<uint64_t> tables(static_cast<size_t>(nout), 0);
    for (uint32_t m = 0; m < (1u << n); ++m) {
      for (int o = 0; o < nout; ++o) {
        if (f(m, o)) tables[static_cast<size_t>(o)] |= (uint64_t{1} << m);
      }
    }
    return tables;
  };
  auto bit = [](uint32_t m, int i) { return ((m >> i) & 1u) != 0; };
  switch (func) {
    case Func::kInv:
      return make([&](uint32_t m, int) { return !bit(m, 0); }, 1);
    case Func::kBuf:
      return make([&](uint32_t m, int) { return bit(m, 0); }, 1);
    case Func::kNand2:
      return make([&](uint32_t m, int) { return !(bit(m, 0) && bit(m, 1)); }, 1);
    case Func::kNand3:
      return make(
          [&](uint32_t m, int) { return !(bit(m, 0) && bit(m, 1) && bit(m, 2)); },
          1);
    case Func::kNand4:
      return make(
          [&](uint32_t m, int) {
            return !(bit(m, 0) && bit(m, 1) && bit(m, 2) && bit(m, 3));
          },
          1);
    case Func::kNor2:
      return make([&](uint32_t m, int) { return !(bit(m, 0) || bit(m, 1)); }, 1);
    case Func::kNor3:
      return make(
          [&](uint32_t m, int) { return !(bit(m, 0) || bit(m, 1) || bit(m, 2)); },
          1);
    case Func::kNor4:
      return make(
          [&](uint32_t m, int) {
            return !(bit(m, 0) || bit(m, 1) || bit(m, 2) || bit(m, 3));
          },
          1);
    case Func::kAnd2:
      return make([&](uint32_t m, int) { return bit(m, 0) && bit(m, 1); }, 1);
    case Func::kAnd3:
      return make(
          [&](uint32_t m, int) { return bit(m, 0) && bit(m, 1) && bit(m, 2); },
          1);
    case Func::kAnd4:
      return make(
          [&](uint32_t m, int) {
            return bit(m, 0) && bit(m, 1) && bit(m, 2) && bit(m, 3);
          },
          1);
    case Func::kOr2:
      return make([&](uint32_t m, int) { return bit(m, 0) || bit(m, 1); }, 1);
    case Func::kOr3:
      return make(
          [&](uint32_t m, int) { return bit(m, 0) || bit(m, 1) || bit(m, 2); },
          1);
    case Func::kOr4:
      return make(
          [&](uint32_t m, int) {
            return bit(m, 0) || bit(m, 1) || bit(m, 2) || bit(m, 3);
          },
          1);
    case Func::kXor2:
      return make([&](uint32_t m, int) { return bit(m, 0) != bit(m, 1); }, 1);
    case Func::kXnor2:
      return make([&](uint32_t m, int) { return bit(m, 0) == bit(m, 1); }, 1);
    case Func::kMux2:
      return make(
          [&](uint32_t m, int) { return bit(m, 2) ? bit(m, 1) : bit(m, 0); }, 1);
    case Func::kAoi21:
      return make(
          [&](uint32_t m, int) { return !((bit(m, 0) && bit(m, 1)) || bit(m, 2)); },
          1);
    case Func::kOai21:
      return make(
          [&](uint32_t m, int) { return !((bit(m, 0) || bit(m, 1)) && bit(m, 2)); },
          1);
    case Func::kAoi22:
      return make(
          [&](uint32_t m, int) {
            return !((bit(m, 0) && bit(m, 1)) || (bit(m, 2) && bit(m, 3)));
          },
          1);
    case Func::kOai22:
      return make(
          [&](uint32_t m, int) {
            return !((bit(m, 0) || bit(m, 1)) && (bit(m, 2) || bit(m, 3)));
          },
          1);
    case Func::kHa:
      return make(
          [&](uint32_t m, int o) {
            return o == 0 ? (bit(m, 0) != bit(m, 1)) : (bit(m, 0) && bit(m, 1));
          },
          2);
    case Func::kFa:
      return make(
          [&](uint32_t m, int o) {
            const int sum = bit(m, 0) + bit(m, 1) + bit(m, 2);
            return o == 0 ? (sum & 1) != 0 : sum >= 2;
          },
          2);
    case Func::kDff:
      // Next-state view: Q follows D (bit 0); CK (bit 1) handled by STA.
      return make([&](uint32_t m, int) { return bit(m, 0); }, 1);
  }
  return {};
}

bool eval(Func func, int out_idx, uint32_t minterm) {
  const auto tables = truth_table(func);
  assert(out_idx >= 0 && out_idx < static_cast<int>(tables.size()));
  return ((tables[static_cast<size_t>(out_idx)] >> minterm) & 1u) != 0;
}

std::vector<Func> all_comb_funcs() {
  return {Func::kInv,   Func::kBuf,   Func::kNand2, Func::kNand3, Func::kNand4,
          Func::kNor2,  Func::kNor3,  Func::kNor4,  Func::kAnd2,  Func::kAnd3,
          Func::kAnd4,  Func::kOr2,   Func::kOr3,   Func::kOr4,   Func::kXor2,
          Func::kXnor2, Func::kMux2,  Func::kAoi21, Func::kOai21, Func::kAoi22,
          Func::kOai22, Func::kHa,    Func::kFa};
}

}  // namespace m3d::cells
