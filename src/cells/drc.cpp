#include "cells/drc.hpp"

#include <algorithm>
#include <cmath>

#include "util/strf.hpp"

namespace m3d::cells {

std::vector<DrcViolation> check_layout(const CellLayout& layout,
                                       const tech::Tech& tech,
                                       const DrcOptions& opt) {
  std::vector<DrcViolation> out;
  const double scale =
      tech.node() == tech::Node::k7nm ? 7.0 / 45.0 : 1.0;
  const double min_miv = opt.min_miv_spacing_um * scale;
  const double min_pitch = opt.min_device_pitch_um * scale;

  // Bounds: every shape inside the cell box.
  for (const auto& d : layout.devices) {
    if (d.x_um < -1e-9 || d.x_um > layout.width_um + 1e-9) {
      out.push_back({"device.bounds",
                     util::strf("device at x=%.3f outside [0, %.3f]", d.x_um,
                                layout.width_um)});
    }
    if (d.w_um <= 0) {
      out.push_back({"device.width", util::strf("non-positive width %.3f", d.w_um)});
    }
  }
  for (const auto& m : layout.mivs) {
    if (m.x_um < -1e-9 || m.x_um > layout.width_um + 1e-9) {
      out.push_back({"miv.bounds",
                     util::strf("MIV '%s' at x=%.3f outside cell", m.net.c_str(),
                                m.x_um)});
    }
  }

  // MIV spacing: no two MIVs closer than the site pitch.
  std::vector<double> xs;
  for (const auto& m : layout.mivs) xs.push_back(m.x_um);
  std::sort(xs.begin(), xs.end());
  for (size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] - xs[i - 1] < min_miv - 1e-9) {
      out.push_back({"miv.spacing",
                     util::strf("MIVs at %.3f and %.3f closer than %.3f",
                                xs[i - 1], xs[i], min_miv)});
    }
  }

  // Device pitch per row/tier: same-row devices must not overlap.
  for (int tier = 0; tier <= 1; ++tier) {
    for (bool pmos : {false, true}) {
      std::vector<std::pair<double, int>> row;  // (x, fingers)
      for (const auto& d : layout.devices) {
        if (d.tier == tier && d.pmos == pmos) row.push_back({d.x_um, d.fingers});
      }
      std::sort(row.begin(), row.end());
      for (size_t i = 1; i < row.size(); ++i) {
        const double need = min_pitch * row[i - 1].second;
        if (row[i].first - row[i - 1].first < need - 1e-9) {
          out.push_back(
              {"device.pitch",
               util::strf("tier %d %s devices at %.3f / %.3f closer than %.3f",
                          tier, pmos ? "PMOS" : "NMOS", row[i - 1].first,
                          row[i].first, need)});
        }
      }
    }
  }

  // Tier discipline: folded cells put PMOS on tier 0, NMOS on tier 1; flat
  // cells keep everything on tier 0. MIVs exist only when folded.
  for (const auto& d : layout.devices) {
    const int want = layout.folded ? (d.pmos ? 0 : 1) : 0;
    if (d.tier != want) {
      out.push_back({"tier.assignment",
                     util::strf("%s device on tier %d (expected %d)",
                                d.pmos ? "PMOS" : "NMOS", d.tier, want)});
    }
  }
  if (!layout.folded && !layout.mivs.empty()) {
    out.push_back({"miv.in_2d", "2D layout contains MIVs"});
  }
  if (layout.folded && layout.mivs.empty() && !layout.devices.empty()) {
    out.push_back({"miv.missing", "folded layout has no MIVs"});
  }

  // Every net extracted with non-negative parasitics.
  for (const auto& [net, p] : layout.nets) {
    if (p.r_kohm < 0 || p.c_ff_dielectric < 0 ||
        p.c_ff_conductor > p.c_ff_dielectric + 1e-12) {
      out.push_back({"extract.sanity", "net " + net + " has inconsistent RC"});
    }
  }
  return out;
}

std::string drc_report(const std::vector<DrcViolation>& violations) {
  if (violations.empty()) return "DRC clean\n";
  std::string out = util::strf("%zu DRC violations:\n", violations.size());
  for (const auto& v : violations) {
    out += "  [" + v.rule + "] " + v.detail + "\n";
  }
  return out;
}

}  // namespace m3d::cells
