#include "cells/spec.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "util/strf.hpp"

namespace m3d::cells {
namespace {

constexpr double kBaseN = 0.415;  // Nangate INV_X1 NMOS width (um)
constexpr double kBaseP = 0.63;   // Nangate INV_X1 PMOS width (um)

/// Series/parallel expression over gate-input literals.
struct Sp {
  enum Kind { kLeaf, kSer, kPar } kind = kLeaf;
  std::string gate;       // for kLeaf
  std::vector<Sp> kids;   // for kSer / kPar

  static Sp leaf(std::string g) { return Sp{kLeaf, std::move(g), {}}; }
  static Sp ser(std::vector<Sp> kids) { return Sp{kSer, {}, std::move(kids)}; }
  static Sp par(std::vector<Sp> kids) { return Sp{kPar, {}, std::move(kids)}; }
};

Sp dual(const Sp& e) {
  if (e.kind == Sp::kLeaf) return e;
  std::vector<Sp> kids;
  kids.reserve(e.kids.size());
  for (const auto& k : e.kids) kids.push_back(dual(k));
  return e.kind == Sp::kSer ? Sp::par(std::move(kids)) : Sp::ser(std::move(kids));
}

class Builder {
 public:
  explicit Builder(CellSpec& spec) : spec_(spec) {}

  std::string fresh() { return util::strf("n%d", counter_++); }

  void mos(bool pmos, const std::string& g, const std::string& d,
           const std::string& s, double w) {
    spec_.transistors.push_back({pmos, w, g, d, s});
  }

  /// Emits the network `e` between nodes `top` and `bottom`.
  /// `stack` counts devices in series so far (for width compensation).
  void emit(const Sp& e, bool pmos, const std::string& top,
            const std::string& bottom, double w_base, int stack) {
    switch (e.kind) {
      case Sp::kLeaf:
        mos(pmos, e.gate, top, bottom, w_base * stack);
        return;
      case Sp::kSer: {
        std::string prev = top;
        const int new_stack = stack * static_cast<int>(e.kids.size());
        for (size_t i = 0; i < e.kids.size(); ++i) {
          const std::string next =
              (i + 1 == e.kids.size()) ? bottom : fresh();
          emit(e.kids[i], pmos, prev, next, w_base, new_stack);
          prev = next;
        }
        return;
      }
      case Sp::kPar:
        for (const auto& k : e.kids) emit(k, pmos, top, bottom, w_base, stack);
        return;
    }
  }

  /// Static CMOS gate: PDN pulls `out` to VSS, PUN (dual unless given) pulls
  /// to VDD.
  void gate(const Sp& pdn, const std::string& out, double scale) {
    emit(dual(pdn), /*pmos=*/true, "VDD", out, kBaseP * scale, 1);
    emit(pdn, /*pmos=*/false, out, "VSS", kBaseN * scale, 1);
  }
  void gate_explicit(const Sp& pdn, const Sp& pun, const std::string& out,
                     double scale) {
    emit(pun, /*pmos=*/true, "VDD", out, kBaseP * scale, 1);
    emit(pdn, /*pmos=*/false, out, "VSS", kBaseN * scale, 1);
  }

  void inverter(const std::string& in, const std::string& out, double scale) {
    mos(true, in, out, "VDD", kBaseP * scale);
    mos(false, in, out, "VSS", kBaseN * scale);
  }

  /// Transmission gate between a and b; conducts when `n_ctrl` is high.
  void tgate(const std::string& a, const std::string& b,
             const std::string& n_ctrl, const std::string& p_ctrl,
             double scale) {
    mos(false, n_ctrl, a, b, kBaseN * 0.6 * scale);
    mos(true, p_ctrl, a, b, kBaseP * 0.6 * scale);
  }

 private:
  CellSpec& spec_;
  int counter_ = 1;
};

Sp L(const char* g) { return Sp::leaf(g); }

}  // namespace

std::string cell_name(Func func, int drive) {
  return util::strf("%s_X%d", to_string(func), drive);
}

std::vector<int> drive_options(Func func) {
  // 66 cells total, matching the paper's library size (supplement S1).
  switch (func) {
    case Func::kInv:
    case Func::kBuf:
    case Func::kNand2:
    case Func::kNor2: return {1, 2, 4, 8};  // 4 funcs x 4 = 16
    case Func::kNand3:
    case Func::kNor3:
    case Func::kAnd2:
    case Func::kOr2:
    case Func::kXor2:
    case Func::kXnor2:
    case Func::kMux2:
    case Func::kAoi21:
    case Func::kOai21:
    case Func::kDff: return {1, 2, 4};      // 10 funcs x 3 = 30
    case Func::kNand4:
    case Func::kNor4:
    case Func::kAnd3:
    case Func::kAnd4:
    case Func::kOr3:
    case Func::kOr4:
    case Func::kAoi22:
    case Func::kOai22:
    case Func::kHa:
    case Func::kFa: return {1, 2};          // 10 funcs x 2 = 20
  }
  return {1};
}

CellSpec make_spec(Func func, int drive) {
  CellSpec spec;
  spec.name = cell_name(func, drive);
  spec.func = func;
  spec.drive = drive;
  Builder b(spec);
  const double x = drive;

  switch (func) {
    case Func::kInv:
      b.inverter("A", "Z", x);
      break;
    case Func::kBuf:
      b.inverter("A", "zn", std::max(1.0, x / 2));
      b.inverter("zn", "Z", x);
      break;
    case Func::kNand2:
      b.gate(Sp::ser({L("A"), L("B")}), "Z", x);
      break;
    case Func::kNand3:
      b.gate(Sp::ser({L("A"), L("B"), L("C")}), "Z", x);
      break;
    case Func::kNand4:
      b.gate(Sp::ser({L("A"), L("B"), L("C"), L("D")}), "Z", x);
      break;
    case Func::kNor2:
      b.gate(Sp::par({L("A"), L("B")}), "Z", x);
      break;
    case Func::kNor3:
      b.gate(Sp::par({L("A"), L("B"), L("C")}), "Z", x);
      break;
    case Func::kNor4:
      b.gate(Sp::par({L("A"), L("B"), L("C"), L("D")}), "Z", x);
      break;
    case Func::kAnd2:
      b.gate(Sp::ser({L("A"), L("B")}), "zn", 1.0);
      b.inverter("zn", "Z", x);
      break;
    case Func::kAnd3:
      b.gate(Sp::ser({L("A"), L("B"), L("C")}), "zn", 1.0);
      b.inverter("zn", "Z", x);
      break;
    case Func::kAnd4:
      b.gate(Sp::ser({L("A"), L("B"), L("C"), L("D")}), "zn", 1.0);
      b.inverter("zn", "Z", x);
      break;
    case Func::kOr2:
      b.gate(Sp::par({L("A"), L("B")}), "zn", 1.0);
      b.inverter("zn", "Z", x);
      break;
    case Func::kOr3:
      b.gate(Sp::par({L("A"), L("B"), L("C")}), "zn", 1.0);
      b.inverter("zn", "Z", x);
      break;
    case Func::kOr4:
      b.gate(Sp::par({L("A"), L("B"), L("C"), L("D")}), "zn", 1.0);
      b.inverter("zn", "Z", x);
      break;
    case Func::kXor2: {
      b.inverter("A", "an", 1.0);
      b.inverter("B", "bn", 1.0);
      // Z = 0 when A == B; PUN conducts when A != B.
      const Sp pdn = Sp::par({Sp::ser({L("A"), L("B")}), Sp::ser({L("an"), L("bn")})});
      const Sp pun = Sp::par({Sp::ser({L("A"), L("bn")}), Sp::ser({L("an"), L("B")})});
      b.gate_explicit(pdn, pun, "Z", x);
      break;
    }
    case Func::kXnor2: {
      b.inverter("A", "an", 1.0);
      b.inverter("B", "bn", 1.0);
      const Sp pdn = Sp::par({Sp::ser({L("A"), L("bn")}), Sp::ser({L("an"), L("B")})});
      const Sp pun = Sp::par({Sp::ser({L("A"), L("B")}), Sp::ser({L("an"), L("bn")})});
      b.gate_explicit(pdn, pun, "Z", x);
      break;
    }
    case Func::kMux2: {
      // Inverted inputs, transmission-gate select, output inverter.
      b.inverter("S", "sn", 1.0);
      b.inverter("A", "an", 1.0);
      b.inverter("B", "bn", 1.0);
      b.tgate("an", "m", "sn", "S", 1.0);  // S=0 selects A
      b.tgate("bn", "m", "S", "sn", 1.0);  // S=1 selects B
      b.inverter("m", "Z", x);
      break;
    }
    case Func::kAoi21:
      b.gate(Sp::par({Sp::ser({L("A1"), L("A2")}), L("B")}), "Z", x);
      break;
    case Func::kOai21:
      b.gate(Sp::ser({Sp::par({L("A1"), L("A2")}), L("B")}), "Z", x);
      break;
    case Func::kAoi22:
      b.gate(Sp::par({Sp::ser({L("A1"), L("A2")}), Sp::ser({L("B1"), L("B2")})}),
             "Z", x);
      break;
    case Func::kOai22:
      b.gate(Sp::ser({Sp::par({L("A1"), L("A2")}), Sp::par({L("B1"), L("B2")})}),
             "Z", x);
      break;
    case Func::kHa: {
      // CO = A*B via NAND+INV; S = XOR.
      b.gate(Sp::ser({L("A"), L("B")}), "con", 1.0);
      b.inverter("con", "CO", x);
      b.inverter("A", "an", 1.0);
      b.inverter("B", "bn", 1.0);
      const Sp pdn = Sp::par({Sp::ser({L("A"), L("B")}), Sp::ser({L("an"), L("bn")})});
      const Sp pun = Sp::par({Sp::ser({L("A"), L("bn")}), Sp::ser({L("an"), L("B")})});
      b.gate_explicit(pdn, pun, "S", x);
      break;
    }
    case Func::kFa: {
      // Mirror full adder: majority and sum stages are self-dual, so the
      // pull-up network has the same topology as the pull-down.
      const Sp maj = Sp::par(
          {Sp::ser({Sp::par({L("A"), L("B")}), L("CI")}), Sp::ser({L("A"), L("B")})});
      b.gate_explicit(maj, maj, "con", 1.0);
      const Sp sum = Sp::par(
          {Sp::ser({Sp::par({L("A"), L("B"), L("CI")}), L("con")}),
           Sp::ser({L("A"), L("B"), L("CI")})});
      b.gate_explicit(sum, sum, "sn", 1.0);
      b.inverter("con", "CO", x);
      b.inverter("sn", "S", x);
      break;
    }
    case Func::kDff: {
      // Master-slave with transmission gates, positive edge.
      b.inverter("CK", "ckb", 1.0);
      b.inverter("ckb", "ckbb", 1.0);
      b.tgate("D", "m1", "ckb", "ckbb", 1.0);   // open while CK=0
      b.inverter("m1", "m2", 1.0);
      b.inverter("m2", "m3", 0.5);
      b.tgate("m3", "m1", "ckbb", "ckb", 0.5);  // master hold while CK=1
      b.tgate("m2", "s1", "ckbb", "ckb", 1.0);  // open while CK=1
      b.inverter("s1", "Q", x);                 // slave forward + output
      b.inverter("Q", "s3", 0.5);
      b.tgate("s3", "s1", "ckb", "ckbb", 0.5);  // slave hold while CK=0
      break;
    }
  }
  return spec;
}

std::vector<std::string> CellSpec::nets() const {
  std::vector<std::string> order{"VDD", "VSS"};
  std::set<std::string> seen{"VDD", "VSS"};
  auto add = [&](const std::string& n) {
    if (seen.insert(n).second) order.push_back(n);
  };
  for (const auto& p : inputs()) add(p);
  for (const auto& p : outputs()) add(p);
  for (const auto& t : transistors) {
    add(t.gate);
    add(t.drain);
    add(t.source);
  }
  return order;
}

bool CellSpec::is_internal(const std::string& net) const {
  if (net == "VDD" || net == "VSS") return false;
  const auto ins = inputs();
  const auto outs = outputs();
  return std::find(ins.begin(), ins.end(), net) == ins.end() &&
         std::find(outs.begin(), outs.end(), net) == outs.end();
}

int CellSpec::num_pmos() const {
  int n = 0;
  for (const auto& t : transistors) n += t.pmos ? 1 : 0;
  return n;
}

int CellSpec::num_nmos() const {
  return static_cast<int>(transistors.size()) - num_pmos();
}

double CellSpec::total_width_um() const {
  double w = 0.0;
  for (const auto& t : transistors) w += t.w_um;
  return w;
}

}  // namespace m3d::cells
