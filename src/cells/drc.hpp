// Design-rule checks for generated cell layouts: the lightweight
// verification pass that replaces a foundry DRC deck for this library's
// abstraction level. Checks device spacing against the poly pitch, MIV
// site spacing/diameter, tier assignment consistency, rail clearance, and
// bounds. Used by tests to keep the layout generator honest.
#pragma once

#include <string>
#include <vector>

#include "cells/layout.hpp"

namespace m3d::cells {

struct DrcViolation {
  std::string rule;
  std::string detail;
};

struct DrcOptions {
  double min_miv_spacing_um = 0.09;  // ~site pitch at 45nm
  double min_device_pitch_um = 0.13;
};

/// Runs all checks; empty result = clean.
std::vector<DrcViolation> check_layout(const CellLayout& layout,
                                       const tech::Tech& tech,
                                       const DrcOptions& opt = {});

std::string drc_report(const std::vector<DrcViolation>& violations);

}  // namespace m3d::cells
