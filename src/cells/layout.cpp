#include "cells/layout.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tech/scaling.hpp"

namespace m3d::cells {
namespace {

struct Terminal {
  bool gate = false;  // gate (poly) vs drain/source (diffusion)
  bool pmos = false;
  double x_um = 0.0;
};

struct NetInfo {
  std::vector<Terminal> terminals;
  bool has(bool pmos) const {
    return std::any_of(terminals.begin(), terminals.end(),
                       [&](const Terminal& t) { return t.pmos == pmos; });
  }
};

/// Accumulates the parasitics of one net from its wire segments, contacts,
/// vias and coupling terms.
struct Accum {
  double r = 0.0, c = 0.0, coupling = 0.0;

  void wire(double len_um, double r_kohm_um, double c_ff_um) {
    if (len_um <= 0) return;
    r += len_um * r_kohm_um;
    c += len_um * c_ff_um;
  }
  void contact(double r_kohm, double c_ff, int n = 1) {
    r += n * r_kohm;
    c += n * c_ff;
  }
  /// Coupling to the other tier — fully counted in dielectric mode,
  /// partially screened by the doped silicon in conductor mode.
  void couple(double c_ff) { coupling += c_ff; }

  NetParasitic finish(double conductor_screen) const {
    NetParasitic p;
    p.r_kohm = r;
    p.c_ff_dielectric = c + coupling;
    p.c_ff_conductor = c + conductor_screen * coupling;
    return p;
  }
};

/// Number of diffusion contact groups: terminals within one pitch share a
/// diffusion strip (and its contact).
int diff_groups(std::vector<double> xs, double pitch) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  int groups = 1;
  for (size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] - xs[i - 1] > pitch + 1e-9) ++groups;
  }
  return groups;
}

double span(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  return *hi - *lo;
}

/// Routed length for a multi-terminal connection: the bare span plus a
/// Steiner surcharge per extra terminal (cell-internal routes snake around
/// other columns; a plain span underestimates complex cells like DFF).
double route_len(const std::vector<double>& xs, const ExtractRules& rules) {
  const double s = span(xs);
  const int extra = std::max(0, static_cast<int>(xs.size()) - 2);
  return s * (1.0 + rules.steiner_per_term * extra);
}

struct Placed {
  std::vector<DeviceShape> devices;   // parallel to spec.transistors
  double width_um = 0.0;
  int num_columns = 0;
};

Placed place_devices(const CellSpec& spec, const ExtractRules& rules,
                     bool folded) {
  Placed out;
  out.devices.resize(spec.transistors.size());
  int p_col = 0, n_col = 0;
  for (size_t i = 0; i < spec.transistors.size(); ++i) {
    const auto& t = spec.transistors[i];
    DeviceShape d;
    d.pmos = t.pmos;
    d.w_um = t.w_um;
    d.fingers = std::max(1, static_cast<int>(std::ceil(t.w_um / rules.max_finger_um)));
    int& col = t.pmos ? p_col : n_col;
    d.x_um = (col + 0.5) * rules.poly_pitch_um;
    col += d.fingers;
    // 2D: both rows on tier 0. Folded: PMOS bottom (0), NMOS top (1).
    d.tier = (folded && !t.pmos) ? 1 : 0;
    out.devices[i] = d;
  }
  out.num_columns = std::max(p_col, n_col);
  out.width_um = (out.num_columns + 1) * rules.poly_pitch_um;
  return out;
}

std::map<std::string, NetInfo> collect_nets(const CellSpec& spec,
                                            const Placed& placed) {
  std::map<std::string, NetInfo> nets;
  for (size_t i = 0; i < spec.transistors.size(); ++i) {
    const auto& t = spec.transistors[i];
    const auto& d = placed.devices[i];
    nets[t.gate].terminals.push_back({true, t.pmos, d.x_um});
    nets[t.drain].terminals.push_back({false, t.pmos, d.x_um});
    nets[t.source].terminals.push_back({false, t.pmos, d.x_um});
  }
  return nets;
}

/// Applies the paper's published 45nm -> 7nm scaling (supplement S3):
/// dimensions x0.156, internal R x7.7, internal C x0.156.
void scale_to_7nm(CellLayout& layout) {
  const tech::ScaleFactors f = tech::itrs_7nm_factors();
  layout.width_um *= f.geometry;
  layout.height_um *= f.geometry;
  for (auto& d : layout.devices) {
    d.x_um *= f.geometry;
    d.w_um *= f.geometry;
  }
  for (auto& m : layout.mivs) m.x_um *= f.geometry;
  for (auto& [name, p] : layout.nets) {
    p.r_kohm *= f.internal_r;
    p.c_ff_dielectric *= f.internal_c;
    p.c_ff_conductor *= f.internal_c;
  }
}

}  // namespace

double CellLayout::total_r_kohm() const {
  double r = 0.0;
  for (const auto& [name, p] : nets) r += p.r_kohm;
  return r;
}

double CellLayout::total_c_ff(SiliconModel m) const {
  double c = 0.0;
  for (const auto& [name, p] : nets) c += p.c_ff(m);
  return c;
}

CellLayout layout_2d(const CellSpec& spec, const tech::Tech& tech,
                     const ExtractRules& rules) {
  // Geometry is built in 45nm units; 7nm applies the published scale factors
  // at the end (the same methodology as the paper's supplement S3).
  const tech::Tech base45(tech::Node::k45nm, tech.style());
  const int m1 = base45.stack().find("M1");
  const double r_m1 = base45.unit_r_kohm(m1);
  const double c_m1 = base45.unit_c_ff(m1);
  const double pitch = rules.poly_pitch_um;

  CellLayout layout;
  layout.cell_name = spec.name;
  layout.folded = false;
  layout.height_um = tech::make_node_params(tech::Node::k45nm).cell_height_um;
  const Placed placed = place_devices(spec, rules, /*folded=*/false);
  layout.devices = placed.devices;
  layout.width_um = placed.width_um;

  const double v_span = layout.height_um / 2.0;  // P row to N row distance
  auto nets = collect_nets(spec, placed);

  for (auto& [name, info] : nets) {
    Accum acc;
    const bool is_rail = (name == "VDD" || name == "VSS");
    std::vector<double> gate_xs, diff_p_xs, diff_n_xs;
    for (const auto& t : info.terminals) {
      if (t.gate) {
        gate_xs.push_back(t.x_um);
      } else {
        (t.pmos ? diff_p_xs : diff_n_xs).push_back(t.x_um);
      }
    }
    const bool has_gate = !gate_xs.empty();
    const bool has_diff = !diff_p_xs.empty() || !diff_n_xs.empty();

    if (is_rail) {
      // Power strip across the full cell width; devices tap it through
      // diffusion contacts. Strips are wide M1 (lower R, higher C).
      acc.wire(layout.width_um, 0.3 * r_m1, 1.5 * c_m1);
      acc.contact(rules.contact_r_kohm, rules.contact_c_ff,
                  diff_groups(diff_p_xs, pitch) + diff_groups(diff_n_xs, pitch));
      layout.nets[name] = acc.finish(rules.conductor_screen);
      continue;
    }

    // Gate routing: vertical poly column joins P and N gates; horizontal
    // gate-to-gate connections also run in poly.
    if (has_gate) {
      int gp = 0, gn = 0;
      for (const auto& t : info.terminals) {
        if (t.gate) ++(t.pmos ? gp : gn);
      }
      // Each aligned P/N gate pair is one continuous vertical poly column.
      const int pairs = std::min(gp, gn);
      acc.wire(pairs * v_span, rules.poly_r_kohm_um, rules.poly_c_ff_um);
      acc.wire(route_len(gate_xs, rules), rules.poly_r_kohm_um, rules.poly_c_ff_um);
    }

    // Diffusion routing: horizontal M1 per row, vertical M1 between rows.
    if (has_diff) {
      acc.wire(route_len(diff_p_xs, rules), r_m1, c_m1);
      acc.wire(route_len(diff_n_xs, rules), r_m1, c_m1);
      if (!diff_p_xs.empty() && !diff_n_xs.empty()) {
        acc.wire(v_span, r_m1, c_m1);
      }
      acc.contact(rules.contact_r_kohm, rules.contact_c_ff,
                  diff_groups(diff_p_xs, pitch) + diff_groups(diff_n_xs, pitch));
    }
    // Poly-to-M1 junction when the net mixes gates and diffusions.
    if (has_gate && has_diff) {
      acc.contact(rules.contact_r_kohm, rules.gate_contact_c_ff, 1);
    } else if (has_gate && !has_diff && spec.is_internal(name) == false) {
      // Input pin landing: one poly contact for the router to reach.
      acc.contact(rules.contact_r_kohm, rules.gate_contact_c_ff, 1);
    }
    layout.nets[name] = acc.finish(rules.conductor_screen);
  }

  if (tech.node() == tech::Node::k7nm) scale_to_7nm(layout);
  return layout;
}

CellLayout fold_tmi(const CellSpec& spec, const tech::Tech& tech,
                    const ExtractRules& rules) {
  const tech::Tech base45(tech::Node::k45nm, tech::Style::kTMI);
  const int m1 = base45.stack().find("M1");
  const int mb1 = base45.stack().find("MB1");
  const double r_m1 = base45.unit_r_kohm(m1);
  const double c_m1 = base45.unit_c_ff(m1);
  const double r_mb1 = base45.unit_r_kohm(mb1);
  const double c_mb1 = base45.unit_c_ff(mb1);
  const tech::CutLayer miv = base45.cut(base45.miv_cut_index());
  const double pitch = rules.poly_pitch_um;

  CellLayout layout;
  layout.cell_name = spec.name;
  layout.folded = true;
  layout.height_um =
      tech::make_node_params(tech::Node::k45nm).tmi_cell_height_um;
  const Placed placed = place_devices(spec, rules, /*folded=*/true);
  layout.devices = placed.devices;
  layout.width_um = placed.width_um;

  auto nets = collect_nets(spec, placed);

  // --- MIV site assignment -------------------------------------------------
  // Sites sit between poly columns on the top tier. Tier-crossing nets want
  // a site at the midpoint of their terminals; contention forces detours.
  struct Crossing {
    std::string net;
    double desired_x;
    int n_mivs;      // multi-terminal nets cross at several points
  };
  std::vector<Crossing> crossings;
  int miv_demand = 0;
  // Top-tier M1 spans of internal nets block the MIV sites they cover (the
  // cells carry routing blockages on the MIV layer — paper Section 2 and
  // supplement S5). Complex cells lose most nearby sites this way.
  struct Blocked {
    std::string net;
    double xlo, xhi;
  };
  std::vector<Blocked> blocked_spans;
  for (auto& [name, info] : nets) {
    if (name == "VDD" || name == "VSS") continue;
    std::vector<double> top_diff_xs;
    for (const auto& t : info.terminals) {
      if (!t.pmos && !t.gate) top_diff_xs.push_back(t.x_um);
    }
    const double s = span(top_diff_xs);
    if (s > 2.5 * pitch) {
      const auto [lo, hi] =
          std::minmax_element(top_diff_xs.begin(), top_diff_xs.end());
      blocked_spans.push_back({name, *lo, *hi});
    }
  }
  for (auto& [name, info] : nets) {
    if (name == "VDD" || name == "VSS") continue;
    bool bottom = false, top = false;
    int gate_bot = 0, gate_top = 0;
    bool diff_bot = false, diff_top = false;
    double x_sum = 0.0;
    for (const auto& t : info.terminals) {
      (t.pmos ? bottom : top) = true;  // PMOS -> bottom tier, NMOS -> top
      if (t.gate) {
        ++(t.pmos ? gate_bot : gate_top);
      } else {
        (t.pmos ? diff_bot : diff_top) = true;
      }
      x_sum += t.x_um;
    }
    if (bottom && top) {
      // The fold preserves the 2D transistor positions (paper S1), so every
      // split P/N gate pair keeps its own vertical connection — one MIV
      // stack per pair — and a diffusion-to-diffusion crossing adds one
      // more. Complex cells therefore carry many stacks.
      const int pairs = std::min(gate_bot, gate_top);
      const int n = std::max(1, pairs + ((diff_bot && diff_top) ? 1 : 0));
      crossings.push_back({name, x_sum / info.terminals.size(), n});
      miv_demand += n;
    }
  }
  // MIV sites sit at half-pitch granularity between the rails on the top
  // tier; the 0.84um folded cell height already reserves this MIV row (the
  // paper's reason why folding gives -40% footprint, not -50%). Width is
  // unchanged by folding.
  const double site_pitch = pitch / 2.0;
  const int num_sites = 2 * placed.num_columns + 1;
  std::sort(crossings.begin(), crossings.end(),
            [](const Crossing& a, const Crossing& b) {
              return a.desired_x < b.desired_x;
            });
  const int total_sites = std::max(num_sites, miv_demand);
  std::vector<bool> taken(static_cast<size_t>(total_sites), false);
  struct MivAssign {
    double detour_sum = 0.0;  // summed |site - desired| over the net's MIVs
    int n = 0;
  };
  std::map<std::string, MivAssign> detour_of;
  for (const auto& cr : crossings) {
    for (int k = 0; k < cr.n_mivs; ++k) {
      // Nearest free site to the desired position.
      int best = -1;
      double best_dist = 1e9;
      for (int s = 0; s < total_sites; ++s) {
        if (taken[static_cast<size_t>(s)]) continue;
        const double x = s * site_pitch;
        const bool is_blocked = std::any_of(
            blocked_spans.begin(), blocked_spans.end(), [&](const Blocked& b) {
              return b.net != cr.net && x > b.xlo - 1e-9 && x < b.xhi + 1e-9;
            });
        if (is_blocked) continue;
        const double dist = std::abs(x - cr.desired_x);
        if (dist < best_dist) {
          best_dist = dist;
          best = s;
        }
      }
      if (best < 0) {
        // Every unblocked site is taken: fall back to the nearest free site
        // regardless of blockage (an over-the-blockage jog, extra detour).
        for (int s = 0; s < total_sites; ++s) {
          if (taken[static_cast<size_t>(s)]) continue;
          const double dist =
              std::abs(s * site_pitch - cr.desired_x) + 1.0 * pitch;
          if (dist < best_dist) {
            best_dist = dist;
            best = s;
          }
        }
      }
      assert(best >= 0);
      taken[static_cast<size_t>(best)] = true;
      auto& asg = detour_of[cr.net];
      asg.detour_sum += best_dist;
      asg.n += 1;
      layout.mivs.push_back({best * site_pitch, cr.net});
    }
  }

  // --- Per-net extraction ---------------------------------------------------
  for (auto& [name, info] : nets) {
    Accum acc;
    const bool is_rail = (name == "VDD" || name == "VSS");
    std::vector<double> bot_xs, top_xs, bot_diff, top_diff, bot_gate, top_gate;
    for (const auto& t : info.terminals) {
      auto& xs = t.pmos ? bot_xs : top_xs;
      xs.push_back(t.x_um);
      if (t.gate) {
        (t.pmos ? bot_gate : top_gate).push_back(t.x_um);
      } else {
        (t.pmos ? bot_diff : top_diff).push_back(t.x_um);
      }
    }

    if (is_rail) {
      // Overlapping VDD (bottom) / VSS (top) strips. VDD is fed from the top
      // power grid through MIV arrays placed clear of the VSS strip.
      const bool vdd = (name == "VDD");
      acc.wire(layout.width_um, 0.3 * (vdd ? r_mb1 : r_m1),
               1.5 * (vdd ? c_mb1 : c_m1));
      acc.contact(rules.contact_r_kohm, rules.contact_c_ff,
                  diff_groups(vdd ? bot_diff : top_diff, pitch));
      if (vdd) {
        const int n_rail_mivs =
            std::max(1, static_cast<int>(layout.width_um / 2.0));
        acc.contact(miv.r_kohm / n_rail_mivs, miv.c_ff * n_rail_mivs, 1);
        // Overlapping strips act as a tiny decoupling cap (paper: ~0.01 fF).
        acc.couple(rules.rail_coupling_ff);
      }
      layout.nets[name] = acc.finish(rules.conductor_screen);
      continue;
    }

    // Horizontal runs per tier: gates in poly, diffusion-bearing in metal
    // (MB1 on the bottom tier, M1 on the top tier).
    acc.wire(route_len(bot_gate, rules), rules.poly_r_kohm_um, rules.poly_c_ff_um);
    acc.wire(route_len(top_gate, rules), rules.poly_r_kohm_um, rules.poly_c_ff_um);
    if (!bot_diff.empty()) acc.wire(route_len(bot_diff, rules), r_mb1, c_mb1);
    if (!top_diff.empty()) acc.wire(route_len(top_diff, rules), r_m1, c_m1);
    acc.contact(rules.contact_r_kohm, rules.contact_c_ff,
                diff_groups(bot_diff, pitch) + diff_groups(top_diff, pitch));

    const auto it = detour_of.find(name);
    if (it != detour_of.end()) {
      const int n_mivs = it->second.n;
      const double detour_sum = it->second.detour_sum;
      const bool gate_net = !bot_gate.empty() || !top_gate.empty();
      const int gate_pairs =
          std::min(static_cast<int>(bot_gate.size()), static_cast<int>(top_gate.size()));
      // Tier-crossing stacks: CTB + MB1 stub -> MIV -> M1 stub + CT, one per
      // MIV. Site contention adds detour wiring; the gate-pair share of the
      // detours runs in high-resistance *poly* (the gate must extend to its
      // displaced MIV on both tiers). Complex cells (DFF) pay many stacks
      // and long poly detours — the mechanism behind Table 1's sign flip.
      acc.wire(n_mivs * rules.m1_stub_um, r_mb1, c_mb1);
      acc.wire(n_mivs * rules.m1_stub_um, r_m1, c_m1);
      const double poly_frac =
          n_mivs > 0 ? static_cast<double>(gate_pairs) / n_mivs : 0.0;
      acc.wire(2.0 * detour_sum * poly_frac, rules.poly_r_kohm_um,
               rules.poly_c_ff_um * rules.detour_poly_c_factor);
      acc.wire(detour_sum * (1.0 - poly_frac), r_mb1, c_mb1);
      acc.wire(detour_sum * (1.0 - poly_frac), r_m1, c_m1);
      acc.contact(miv.r_kohm, miv.c_ff, n_mivs);
      const bool direct_sd = n_mivs == 1 && detour_sum <= pitch / 2 &&
                             !bot_diff.empty() && !top_diff.empty();
      if (direct_sd) {
        // Direct S/D contact (paper Fig 5(c)): the MIV lands straight on the
        // diffusion, saving one contact in the stack.
        acc.contact(rules.contact_r_kohm, rules.contact_c_ff, 1);
      } else {
        acc.contact(rules.contact_r_kohm,
                    gate_net ? rules.gate_contact_c_ff : rules.contact_c_ff,
                    2 * n_mivs);
      }
      // Folded gates keep only short per-tier poly stubs (vs the 2D
      // full-height poly columns), the main source of the R win in simple
      // cells.
      if (!bot_gate.empty()) acc.wire(rules.poly_stub_um, rules.poly_r_kohm_um, rules.poly_c_ff_um);
      if (!top_gate.empty()) acc.wire(rules.poly_stub_um, rules.poly_r_kohm_um, rules.poly_c_ff_um);
      // Tier coupling around the MIVs and along the detour overlap.
      acc.couple(n_mivs * rules.miv_coupling_ff +
                 rules.wire_coupling_ff_um * detour_sum);
    } else {
      // Single-tier net: if it has both gates and diffusion, one junction.
      if ((!bot_gate.empty() || !top_gate.empty()) &&
          (!bot_diff.empty() || !top_diff.empty())) {
        acc.contact(rules.contact_r_kohm, rules.gate_contact_c_ff, 1);
      }
    }
    layout.nets[name] = acc.finish(rules.conductor_screen);
  }

  if (tech.node() == tech::Node::k7nm) scale_to_7nm(layout);
  return layout;
}

}  // namespace m3d::cells
