// Logical cell functions for the standard-cell library and technology
// mapping. Truth tables are bitmasks over input minterms: bit i of
// truth[output] is the output value when the inputs spell the integer i
// (inputs[0] = LSB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace m3d::cells {

enum class Func {
  kInv,
  kBuf,
  kNand2,
  kNand3,
  kNand4,
  kNor2,
  kNor3,
  kNor4,
  kAnd2,
  kAnd3,
  kAnd4,
  kOr2,
  kOr3,
  kOr4,
  kXor2,
  kXnor2,
  kMux2,   // inputs A, B, S; output = S ? B : A
  kAoi21,  // !(A1*A2 + B)
  kOai21,  // !((A1+A2) * B)
  kAoi22,  // !(A1*A2 + B1*B2)
  kOai22,  // !((A1+A2)*(B1+B2))
  kHa,     // half adder: S, CO
  kFa,     // full adder: S, CO
  kDff,    // D flip-flop: D, CK -> Q
};

const char* to_string(Func func);
/// Parses the name produced by to_string. Returns false on unknown names.
bool func_from_string(const std::string& name, Func* out);

/// Input pin names in canonical order (LSB first for truth tables).
std::vector<std::string> input_pins(Func func);
/// Output pin names.
std::vector<std::string> output_pins(Func func);
int num_inputs(Func func);
bool is_sequential(Func func);

/// Truth table masks, one per output. Sequential cells return the
/// next-state function of (D, CK ignored): bit pattern for Q = D.
std::vector<uint64_t> truth_table(Func func);

/// Evaluates output `out_idx` for the input assignment packed in `minterm`.
bool eval(Func func, int out_idx, uint32_t minterm);

/// All combinational functions, in a stable order (excludes kDff).
std::vector<Func> all_comb_funcs();

}  // namespace m3d::cells
