// GDSII stream-format writer for cell layouts. Produces real binary GDSII
// (version 600) readable by KLayout etc., with one structure per cell.
//
// Layer map (GDS layer / datatype 0):
//   1  bottom-tier diffusion (PMOS)     2  top-tier diffusion (NMOS)
//   10 bottom-tier poly                 11 top-tier poly
//   30 MB1                              31 M1
//   40 MIV
// For 2D cells, PMOS/NMOS diffusion both go on layer 1 and poly on 10.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cells/layout.hpp"

namespace m3d::cells {

class GdsWriter {
 public:
  explicit GdsWriter(const std::string& libname = "monolith3d");

  /// Adds one cell structure rendering `layout` (2D or folded).
  void add_cell(const CellSpec& spec, const CellLayout& layout);

  /// Finishes the stream and returns the binary contents.
  std::vector<uint8_t> finish() const;
  bool save(const std::string& path) const;

  int num_cells() const { return num_cells_; }

 private:
  void record(uint8_t rectype, uint8_t datatype,
              const std::vector<uint8_t>& payload = {});
  void record_i16(uint8_t rectype, const std::vector<int16_t>& values);
  void record_i32(uint8_t rectype, const std::vector<int32_t>& values);
  void record_str(uint8_t rectype, const std::string& s);
  /// Axis-aligned rectangle boundary on a layer; coordinates in um.
  void rect(int layer, double x, double y, double w, double h);

  std::vector<uint8_t> body_;
  int num_cells_ = 0;
};

/// Writes the full 66-cell library (folded when `style` is 3D) to `path`.
bool write_library_gds(const std::string& path, const tech::Tech& tech);

}  // namespace m3d::cells
