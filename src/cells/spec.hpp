// Transistor-level cell specification: the SPICE-level content of one
// standard cell, before any layout. Cells are generated from series/parallel
// pull-up / pull-down networks (plus hand-built transmission-gate structures
// for MUX2 and DFF), mirroring the topology of the Nangate 45nm cells the
// paper folds.
#pragma once

#include <string>
#include <vector>

#include "cells/func.hpp"

namespace m3d::cells {

struct CellTransistor {
  bool pmos = false;
  double w_um = 0.0;
  std::string gate;
  std::string drain;
  std::string source;
};

struct CellSpec {
  std::string name;        // e.g. "NAND2_X2"
  Func func = Func::kInv;
  int drive = 1;           // X1 / X2 / X4 / X8
  std::vector<CellTransistor> transistors;

  std::vector<std::string> inputs() const { return input_pins(func); }
  std::vector<std::string> outputs() const { return output_pins(func); }
  bool sequential() const { return is_sequential(func); }

  /// All distinct net names, rails first ("VDD", "VSS"), then pins, then
  /// internal nets in first-use order.
  std::vector<std::string> nets() const;
  /// True if `net` is an internal net (not a rail, not a pin).
  bool is_internal(const std::string& net) const;

  int num_pmos() const;
  int num_nmos() const;
  double total_width_um() const;
};

/// Builds the transistor network for (func, drive). Drive multiplies the
/// output-stage widths; base widths follow Nangate X1 (PMOS 0.63um /
/// NMOS 0.415um) with series-stack width compensation.
CellSpec make_spec(Func func, int drive);

/// Canonical cell name, e.g. "AOI21_X2".
std::string cell_name(Func func, int drive);

/// The drive strengths offered per function in the NangateLite library;
/// the full library is the cross product (66 cells).
std::vector<int> drive_options(Func func);

}  // namespace m3d::cells
