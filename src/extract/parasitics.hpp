// Per-net electrical view consumed by STA and power analysis. Three sources
// produce it, in increasing fidelity (matching the flow stages of Fig 1):
// wire load models (synthesis), placement HPWL (pre-route optimization), and
// routed segments (sign-off).
#pragma once

#include <vector>

namespace m3d::extract {

struct NetParasitics {
  double wire_cap_ff = 0.0;   // routed/estimated metal + via capacitance
  double wire_res_kohm = 0.0; // total wire resistance
  /// Per-sink Elmore resistance (driver -> sink path resistance), parallel
  /// to Net::sinks. Empty means use wire_res_kohm for every sink.
  std::vector<double> sink_res_kohm;
  double wirelength_um = 0.0;

  double sink_res(size_t sink_idx) const {
    return sink_idx < sink_res_kohm.size() ? sink_res_kohm[sink_idx]
                                           : wire_res_kohm;
  }
};

/// One entry per net (indexed by NetId).
using Parasitics = std::vector<NetParasitics>;

}  // namespace m3d::extract
