#include "extract/extract.hpp"

#include <algorithm>

#include "geom/rect.hpp"

namespace m3d::extract {
namespace {

tech::LayerLevel to_tech_level(route::Level level) {
  switch (level) {
    case route::kLocal: return tech::LayerLevel::kLocal;
    case route::kIntermediate: return tech::LayerLevel::kIntermediate;
    default: return tech::LayerLevel::kGlobal;
  }
}

/// Average via R/C for reaching `level` from the pins (M1).
void via_rc(const tech::Tech& tech, route::Level level, double* r, double* c) {
  // Sum cut RC from M1 up to the first layer of the level.
  const int first = tech.stack().first_of(to_tech_level(level));
  double rr = 0.0, cc = 0.0;
  const int m1 = tech.stack().find("M1");
  for (int i = std::max(0, m1); i < first && i < static_cast<int>(tech.stack().cuts.size()); ++i) {
    rr += tech.cut(i).r_kohm;
    cc += tech.cut(i).c_ff;
  }
  *r = rr;
  *c = cc;
}

}  // namespace

double unit_r_kohm_um(const tech::Tech& tech, route::Level level) {
  const tech::LayerLevel tl = to_tech_level(level);
  double sum = 0.0;
  int n = 0;
  for (const auto& layer : tech.stack().layers) {
    if (layer.level == tl) {
      sum += layer.unit_r_kohm;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double unit_c_ff_um(const tech::Tech& tech, route::Level level) {
  const tech::LayerLevel tl = to_tech_level(level);
  double sum = 0.0;
  int n = 0;
  for (const auto& layer : tech.stack().layers) {
    if (layer.level == tl) {
      sum += layer.unit_c_ff;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

Parasitics extract_from_placement(const circuit::Netlist& nl,
                                  const tech::Tech& tech) {
  Parasitics par(static_cast<size_t>(nl.num_nets()));
  const double node_scale = tech.node() == tech::Node::k7nm ? 7.0 / 45.0 : 1.0;
  const double t_local = 60.0 * node_scale;
  const double t_inter = 400.0 * node_scale;

  for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
    const circuit::Net& net = nl.net(n);
    if (net.is_clock || net.sinks.empty()) continue;
    geom::Rect box;
    if (net.driver.inst != circuit::kInvalid) box.expand(nl.inst(net.driver.inst).pos);
    for (const auto& s : net.sinks) {
      if (s.inst != circuit::kInvalid) box.expand(nl.inst(s.inst).pos);
    }
    for (const auto& port : nl.ports()) {
      if (port.net == n) box.expand(port.pos);
    }
    if (box.empty()) continue;
    const double hpwl = box.half_perimeter();
    const double wl = hpwl * (1.0 + 0.1 * std::max(0, net.fanout() - 1));
    const route::Level level =
        wl <= t_local ? route::kLocal
                      : (wl <= t_inter ? route::kIntermediate : route::kGlobal);
    double vr = 0.0, vc = 0.0;
    via_rc(tech, level, &vr, &vc);
    auto& p = par[static_cast<size_t>(n)];
    p.wirelength_um = wl;
    p.wire_cap_ff = wl * unit_c_ff_um(tech, level) + 2.0 * vc;
    p.wire_res_kohm = wl * unit_r_kohm_um(tech, level) + 2.0 * vr;
    // Pre-route: a single lumped resistance for all sinks.
  }
  return par;
}

Parasitics extract_from_routes(const circuit::Netlist& nl,
                               const tech::Tech& tech,
                               const route::RouteResult& routes) {
  Parasitics par(static_cast<size_t>(nl.num_nets()));
  double unit_r[route::kNumLevels], unit_c[route::kNumLevels];
  for (int l = 0; l < route::kNumLevels; ++l) {
    unit_r[l] = unit_r_kohm_um(tech, static_cast<route::Level>(l));
    unit_c[l] = unit_c_ff_um(tech, static_cast<route::Level>(l));
  }
  // Representative via cut (local-level access).
  double via_r = 0.002, via_c = 0.01;
  if (!tech.stack().cuts.empty()) {
    via_r = tech.stack().cuts[tech.stack().cuts.size() / 2].r_kohm;
    via_c = tech.stack().cuts[tech.stack().cuts.size() / 2].c_ff;
  }

  for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
    const circuit::Net& net = nl.net(n);
    if (net.is_clock || net.sinks.empty()) continue;
    const route::NetRoute& nr = routes.nets[static_cast<size_t>(n)];
    auto& p = par[static_cast<size_t>(n)];
    double cap = nr.vias * via_c;
    double res = nr.vias * via_r * 0.25;  // vias largely parallel across the tree
    for (int l = 0; l < route::kNumLevels; ++l) {
      cap += nr.wl_um[static_cast<size_t>(l)] * unit_c[l];
      res += nr.wl_um[static_cast<size_t>(l)] * unit_r[l];
      p.wirelength_um += nr.wl_um[static_cast<size_t>(l)];
    }
    p.wire_cap_ff = cap;
    p.wire_res_kohm = res;
    p.sink_res_kohm.resize(net.sinks.size(), res);
    for (size_t k = 0; k < net.sinks.size() && k < nr.sink_path_wl.size(); ++k) {
      double r = 0.0;
      for (int l = 0; l < route::kNumLevels; ++l) {
        r += nr.sink_path_wl[k][static_cast<size_t>(l)] * unit_r[l];
      }
      p.sink_res_kohm[k] = r + 2.0 * via_r;
    }
  }
  return par;
}

}  // namespace m3d::extract
