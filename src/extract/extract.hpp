// Full-chip net RC extraction. Produces the Parasitics view for STA/power
// from either placement estimates (pre-route optimization) or routed
// segments (sign-off), using the Tech unit-RC tables (our capTable).
#pragma once

#include "circuit/netlist.hpp"
#include "extract/parasitics.hpp"
#include "route/route.hpp"
#include "tech/tech.hpp"

namespace m3d::extract {

/// Average unit resistance/capacitance of the layers at a routing level.
double unit_r_kohm_um(const tech::Tech& tech, route::Level level);
double unit_c_ff_um(const tech::Tech& tech, route::Level level);

/// Pre-route estimate: HPWL with a Steiner fanout factor, level chosen by
/// net length (same thresholds as the router).
Parasitics extract_from_placement(const circuit::Netlist& nl,
                                  const tech::Tech& tech);

/// Sign-off extraction from routed segments: per-level wirelength and vias,
/// per-sink Elmore resistances from the routed tree paths.
Parasitics extract_from_routes(const circuit::Netlist& nl,
                               const tech::Tech& tech,
                               const route::RouteResult& routes);

}  // namespace m3d::extract
