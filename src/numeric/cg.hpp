// Preconditioned conjugate gradient on numeric::Csr, shared by every
// quadratic-solve call site (the placer's global solve today; any SPD
// system tomorrow).
//
// Determinism: every inner product folds left-to-right in index order and
// the SpMV is Csr::spmv (fixed row-major order), so the iterate sequence —
// and the converged x — is bit-identical run to run for a given matrix.
//
// Convergence is *relative*: the solver stops when the preconditioned
// residual norm-squared r'M⁻¹r falls below rel_tol² of its initial value
// (plus an optional absolute floor). The legacy placer used a bare
// `rz > 1e-10`, an absolute test that silently tightens or loosens with
// problem size and coordinate scale; relative-to-start is scale-free.
#pragma once

#include <vector>

#include "numeric/csr.hpp"

namespace m3d::numeric {

enum class CgPrecond {
  kJacobi,  // M = diag(A), floored at CgOptions::diag_floor
  kIc0,     // incomplete Cholesky, zero fill; falls back to Jacobi on
            // breakdown (non-positive pivot)
};

struct CgOptions {
  int max_iters = 100;
  /// Stop when rz <= rel_tol^2 * rz0 (rz = r'M⁻¹r, rz0 its initial value).
  double rel_tol = 1e-6;
  /// Additional absolute stop threshold on rz (0 disables). The legacy
  /// placer behaviour is rel_tol = 0, abs_floor = 1e-10.
  double abs_floor = 0.0;
  /// Jacobi: diagonal entries are clamped up to this before dividing, so
  /// empty/zero rows cannot produce infinities.
  double diag_floor = 1e-12;
  CgPrecond precond = CgPrecond::kJacobi;
};

struct CgResult {
  int iters = 0;              // iterations actually run
  double rel_residual = 0.0;  // sqrt(rz / rz0); 0 when rz0 == 0
  bool converged = false;     // hit the tolerance (vs the iteration cap)
  bool precond_fallback = false;  // IC(0) broke down, Jacobi was used
};

/// Solves A x = rhs for symmetric positive (semi-)definite A, starting
/// from the caller's x (warm starts are part of the contract: the placer
/// seeds with the previous placement). x is updated in place.
CgResult cg_solve(const Csr& a, const std::vector<double>& rhs,
                  std::vector<double>& x, const CgOptions& opt);

}  // namespace m3d::numeric
