// Sparse LU with a symbolic/numeric split, plus the shared dense
// Gaussian-elimination fallback.
//
// The intended call shape is the SPICE Newton loop: an MNA matrix keeps
// one sparsity pattern across every Newton iteration and timestep of a
// transient run, so the fill-reducing ordering and fill pattern are
// computed ONCE (`analyze`) and each Newton step only refactors numbers
// into the precomputed structure (`factor`, no allocation) and runs the
// two triangular solves (`solve`). Pivots are not reordered numerically —
// the pattern must stay valid — so `factor` instead checks each diagonal
// pivot against a threshold *relative to the matrix scale* and reports a
// structured failure; callers (spice::simulate) fall back to dense partial
// pivoting for that step.
//
// Determinism: minimum-degree ties break on the lowest node index, all
// merges walk ascending column order, and the numeric kernel accumulates
// in fixed pattern order — identical matrices factor to identical bits.
#pragma once

#include <string>
#include <vector>

#include "numeric/csr.hpp"
#include "obs/mem.hpp"

namespace m3d::numeric {

enum class FactorFailure {
  kNone,
  kEmptyMatrix,  // no nonzero entries at all: scale is undefined
  kSmallPivot,   // |pivot| < pivot_rel_tol * max|a_ij| at some row
};

/// Structured factorization outcome. `row` / `pivot_abs` / `scale`
/// identify the offending pivot in the caller's (unpermuted) indexing.
struct FactorStatus {
  FactorFailure failure = FactorFailure::kNone;
  int row = -1;
  double pivot_abs = 0.0;
  double scale = 0.0;

  bool ok() const { return failure == FactorFailure::kNone; }
  std::string to_string() const;
};

class SparseLu {
 public:
  /// Symbolic phase: minimum-degree ordering of A's symmetrized pattern +
  /// fill pattern of L/U + the A-slot scatter map. Values are ignored;
  /// the result is reusable for any matrix with the same pattern.
  void analyze(const Csr& a);
  bool analyzed() const { return n_ >= 0; }
  int dim() const { return n_ < 0 ? 0 : n_; }
  /// Fill nonzeros of L + U (the memory the refactorization touches).
  size_t fill_nnz() const { return lcol_.size() + ucol_.size(); }

  /// Numeric (re)factorization of `a`, which must have exactly the
  /// analyzed pattern. No allocation after the first call.
  FactorStatus factor(const Csr& a, double pivot_rel_tol = 1e-12);

  /// x = A^-1 b using the current factors. b and x have dim() elements
  /// and may alias. Only valid after a successful factor().
  void solve(const double* b, double* x);
  void solve(const std::vector<double>& b, std::vector<double>& x);

 private:
  int n_ = -1;
  std::vector<int> perm_;   // elimination order: perm_[k] = original row
  std::vector<int> iperm_;  // original row -> elimination position
  // Fill pattern in permuted indexing: per permuted row, strictly-lower
  // columns (ascending) and upper columns including the diagonal first.
  std::vector<int> lrow_ptr_, lcol_;
  std::vector<int> urow_ptr_, ucol_;
  // Scatter program: A's stored slots routed to (permuted row, permuted
  // col), grouped by permuted row in slot order.
  std::vector<int> arow_ptr_, a_slot_, a_pcol_;
  obs::vector<double> lval_, uval_;
  obs::vector<double> work_;  // dense scatter row / solve scratch
};

/// Dense Gaussian elimination with partial pivoting: solves A x = b in
/// place (A row-major n*n, result in b). The pivot test is relative to
/// the matrix scale (max |a_ij| of the input): a pivot column whose best
/// pivot falls under pivot_rel_tol * scale reports kSmallPivot instead of
/// the old hard-coded absolute 1e-18, which misclassified well-conditioned
/// small-valued systems and silently accepted garbage on large-valued
/// ones.
FactorStatus dense_lu_solve(std::vector<double>& a, std::vector<double>& b,
                            int n, double pivot_rel_tol = 1e-12);

}  // namespace m3d::numeric
