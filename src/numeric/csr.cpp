#include "numeric/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace m3d::numeric {

void Csr::spmv(const double* x, double* y) const {
  for (int i = 0; i < rows; ++i) {
    double sum = 0.0;
    const int b = row_ptr[static_cast<size_t>(i)];
    const int e = row_ptr[static_cast<size_t>(i) + 1];
    for (int k = b; k < e; ++k) {
      sum += val[static_cast<size_t>(k)] * x[col[static_cast<size_t>(k)]];
    }
    y[i] = sum;
  }
}

void Csr::spmv(const std::vector<double>& x, std::vector<double>& y) const {
  assert(static_cast<int>(x.size()) == cols);
  y.resize(static_cast<size_t>(rows));
  spmv(x.data(), y.data());
}

double Csr::max_abs() const {
  double m = 0.0;
  for (double v : val) m = std::max(m, std::abs(v));
  return m;
}

void CsrBuilder::add(int row, int col, double v) {
  assert(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  trips_.push_back(Trip{row, col, v});
}

void CsrBuilder::merge(const CsrBuilder& other) {
  assert(other.rows_ == rows_ && other.cols_ == cols_);
  trips_.insert(trips_.end(), other.trips_.begin(), other.trips_.end());
}

Csr CsrBuilder::build(std::vector<int>* slot_of_add) const {
  const size_t n = trips_.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Stable: equal (row, col) keys keep insertion order, so duplicate
  // contributions sum in exactly the order they were added.
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const Trip& ta = trips_[static_cast<size_t>(a)];
    const Trip& tb = trips_[static_cast<size_t>(b)];
    return ta.r != tb.r ? ta.r < tb.r : ta.c < tb.c;
  });

  Csr m;
  m.rows = rows_;
  m.cols = cols_;
  m.row_ptr.assign(static_cast<size_t>(rows_) + 1, 0);
  m.col.reserve(n);
  m.val.reserve(n);
  if (slot_of_add != nullptr) slot_of_add->assign(n, -1);

  int prev_r = -1, prev_c = -1;
  for (int oi : order) {
    const Trip& t = trips_[static_cast<size_t>(oi)];
    if (t.r == prev_r && t.c == prev_c) {
      m.val.back() += t.v;
    } else {
      m.col.push_back(t.c);
      m.val.push_back(t.v);
      prev_r = t.r;
      prev_c = t.c;
      m.row_ptr[static_cast<size_t>(t.r) + 1] += 1;
    }
    if (slot_of_add != nullptr) {
      (*slot_of_add)[static_cast<size_t>(oi)] =
          static_cast<int>(m.val.size()) - 1;
    }
  }
  for (int i = 0; i < rows_; ++i) {
    m.row_ptr[static_cast<size_t>(i) + 1] += m.row_ptr[static_cast<size_t>(i)];
  }
  m.diag_slot.assign(static_cast<size_t>(rows_), -1);
  for (int i = 0; i < rows_; ++i) {
    for (int k = m.row_ptr[static_cast<size_t>(i)];
         k < m.row_ptr[static_cast<size_t>(i) + 1]; ++k) {
      if (m.col[static_cast<size_t>(k)] == i) {
        m.diag_slot[static_cast<size_t>(i)] = k;
        break;
      }
    }
  }
  return m;
}

}  // namespace m3d::numeric
