#include "numeric/cg.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>

#include "obs/mem.hpp"

namespace m3d::numeric {
namespace {

/// Zero-fill incomplete Cholesky factor (lower triangle of A's pattern,
/// diagonal last within each row). Returns false on breakdown (pivot
/// <= 0), in which case the caller falls back to Jacobi.
struct Ic0 {
  int n = 0;
  std::vector<int> row_ptr;  // lower-triangle pattern, ascending cols
  std::vector<int> col;      // diag is the last entry of each row
  obs::vector<double> val;

  bool build(const Csr& a) {
    n = a.rows;
    row_ptr.assign(static_cast<size_t>(n) + 1, 0);
    col.clear();
    val.clear();
    for (int i = 0; i < n; ++i) {
      bool has_diag = false;
      for (int k = a.row_ptr[static_cast<size_t>(i)];
           k < a.row_ptr[static_cast<size_t>(i) + 1]; ++k) {
        const int j = a.col[static_cast<size_t>(k)];
        if (j > i) break;  // ascending cols: upper part starts here
        col.push_back(j);
        val.push_back(a.val[static_cast<size_t>(k)]);
        if (j == i) has_diag = true;
      }
      if (!has_diag) return false;  // structurally missing pivot
      row_ptr[static_cast<size_t>(i) + 1] = static_cast<int>(col.size());
    }
    // Row-wise factorization; two-pointer pattern intersections keep the
    // accumulation order fixed (ascending shared columns).
    for (int i = 0; i < n; ++i) {
      const int ib = row_ptr[static_cast<size_t>(i)];
      const int ie = row_ptr[static_cast<size_t>(i) + 1];
      for (int k = ib; k < ie; ++k) {
        const int j = col[static_cast<size_t>(k)];
        double sum = val[static_cast<size_t>(k)];
        const int jb = row_ptr[static_cast<size_t>(j)];
        const int je = row_ptr[static_cast<size_t>(j) + 1] - 1;  // excl diag
        int pi = ib, pj = jb;
        while (pi < k && pj < je) {
          const int ci = col[static_cast<size_t>(pi)];
          const int cj = col[static_cast<size_t>(pj)];
          if (ci == cj) {
            sum -= val[static_cast<size_t>(pi)] * val[static_cast<size_t>(pj)];
            ++pi;
            ++pj;
          } else if (ci < cj) {
            ++pi;
          } else {
            ++pj;
          }
        }
        if (j == i) {
          if (sum <= 0.0) return false;  // breakdown
          val[static_cast<size_t>(k)] = std::sqrt(sum);
        } else {
          const double d = val[static_cast<size_t>(je)];  // diag of row j
          val[static_cast<size_t>(k)] = sum / d;
        }
      }
    }
    return true;
  }

  /// z = (L L')^-1 r.
  void apply(const double* r, double* z) const {
    for (int i = 0; i < n; ++i) {
      double sum = r[i];
      const int ib = row_ptr[static_cast<size_t>(i)];
      const int ie = row_ptr[static_cast<size_t>(i) + 1] - 1;
      for (int k = ib; k < ie; ++k) {
        sum -= val[static_cast<size_t>(k)] * z[col[static_cast<size_t>(k)]];
      }
      z[i] = sum / val[static_cast<size_t>(ie)];
    }
    for (int i = n - 1; i >= 0; --i) {
      const int ie = row_ptr[static_cast<size_t>(i) + 1] - 1;
      const double zi = z[i] / val[static_cast<size_t>(ie)];
      z[i] = zi;
      const int ib = row_ptr[static_cast<size_t>(i)];
      for (int k = ib; k < ie; ++k) {
        z[col[static_cast<size_t>(k)]] -= val[static_cast<size_t>(k)] * zi;
      }
    }
  }
};

}  // namespace

CgResult cg_solve(const Csr& a, const std::vector<double>& rhs,
                  std::vector<double>& x, const CgOptions& opt) {
  assert(a.rows == a.cols);
  const size_t n = rhs.size();
  assert(static_cast<int>(n) == a.rows);
  x.resize(n);
  CgResult res;
  if (n == 0) {
    res.converged = true;
    return res;
  }

  Ic0 ic;
  bool use_ic = opt.precond == CgPrecond::kIc0;
  if (use_ic && !ic.build(a)) {
    use_ic = false;
    res.precond_fallback = true;
  }
  obs::vector<double> inv_diag;
  if (!use_ic) {
    inv_diag.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const int slot = a.diag_slot[i];
      const double d = slot >= 0 ? a.val[static_cast<size_t>(slot)] : 0.0;
      inv_diag[i] = 1.0 / std::max(d, opt.diag_floor);
    }
  }
  auto precondition = [&](const obs::vector<double>& r, obs::vector<double>& z) {
    if (use_ic) {
      ic.apply(r.data(), z.data());
    } else {
      for (size_t i = 0; i < n; ++i) z[i] = r[i] * inv_diag[i];
    }
  };

  obs::vector<double> r(n), z(n), p(n), ap(n);
  a.spmv(x.data(), ap.data());
  for (size_t i = 0; i < n; ++i) r[i] = rhs[i] - ap[i];
  precondition(r, z);
  for (size_t i = 0; i < n; ++i) p[i] = z[i];
  double rz = 0.0;
  for (size_t i = 0; i < n; ++i) rz += r[i] * z[i];
  const double rz0 = rz;
  const double threshold =
      std::max(opt.rel_tol * opt.rel_tol * rz0, opt.abs_floor);

  int it = 0;
  for (; it < opt.max_iters && rz > threshold; ++it) {
    a.spmv(p.data(), ap.data());
    double pap = 0.0;
    for (size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    if (pap <= 0) break;  // indefinite/rounding guard, same as legacy
    const double alpha = rz / pap;
    for (size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    precondition(r, z);
    double rz_new = 0.0;
    for (size_t i = 0; i < n; ++i) rz_new += r[i] * z[i];
    const double beta = rz_new / rz;
    rz = rz_new;
    for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  res.iters = it;
  res.converged = rz <= threshold;
  res.rel_residual = rz0 > 0.0 ? std::sqrt(std::max(rz, 0.0) / rz0) : 0.0;
  return res;
}

}  // namespace m3d::numeric
