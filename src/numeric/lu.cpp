#include "numeric/lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "util/strf.hpp"

namespace m3d::numeric {

std::string FactorStatus::to_string() const {
  switch (failure) {
    case FactorFailure::kNone:
      return "ok";
    case FactorFailure::kEmptyMatrix:
      return "empty matrix (no nonzero entries)";
    case FactorFailure::kSmallPivot:
      return util::strf(
          "singular: pivot %.3g at row %d below threshold (matrix scale "
          "%.3g)",
          pivot_abs, row, scale);
  }
  return "unknown";
}

void SparseLu::analyze(const Csr& a) {
  assert(a.rows == a.cols);
  const int n = a.rows;
  n_ = n;
  perm_.assign(static_cast<size_t>(n), 0);
  iperm_.assign(static_cast<size_t>(n), 0);

  // --- Minimum-degree ordering on the symmetrized pattern ------------------
  // Greedy elimination of the currently-lowest-degree node (ties: lowest
  // index), forming the neighbor clique each step. Exact and deterministic;
  // our systems (MNA cell circuits) are small enough that the quotient-graph
  // machinery of production orderings would be pure overhead.
  std::vector<std::set<int>> adj(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int k = a.row_ptr[static_cast<size_t>(i)];
         k < a.row_ptr[static_cast<size_t>(i) + 1]; ++k) {
      const int j = a.col[static_cast<size_t>(k)];
      if (j != i) {
        adj[static_cast<size_t>(i)].insert(j);
        adj[static_cast<size_t>(j)].insert(i);
      }
    }
  }
  std::vector<bool> alive(static_cast<size_t>(n), true);
  for (int k = 0; k < n; ++k) {
    int best = -1;
    size_t best_deg = 0;
    for (int v = 0; v < n; ++v) {
      if (!alive[static_cast<size_t>(v)]) continue;
      const size_t deg = adj[static_cast<size_t>(v)].size();
      if (best < 0 || deg < best_deg) {
        best = v;
        best_deg = deg;
      }
    }
    perm_[static_cast<size_t>(k)] = best;
    iperm_[static_cast<size_t>(best)] = k;
    alive[static_cast<size_t>(best)] = false;
    const std::set<int> nbrs = adj[static_cast<size_t>(best)];
    for (int u : nbrs) {
      adj[static_cast<size_t>(u)].erase(best);
      for (int w : nbrs) {
        if (w != u) adj[static_cast<size_t>(u)].insert(w);
      }
    }
    adj[static_cast<size_t>(best)].clear();
  }

  // --- Symbolic factorization ----------------------------------------------
  // Row i's fill structure = its A pattern plus, transitively for every
  // below-diagonal column j (ascending), the U structure of row j. The
  // ordered `todo` set makes the closure walk ascending-j, matching the
  // numeric elimination order.
  lrow_ptr_.assign(1, 0);
  urow_ptr_.assign(1, 0);
  lcol_.clear();
  ucol_.clear();
  arow_ptr_.assign(1, 0);
  a_slot_.clear();
  a_pcol_.clear();
  std::vector<std::vector<int>> urows(static_cast<size_t>(n));
  // A slots grouped by permuted row, in that row's stored-slot order.
  for (int pi = 0; pi < n; ++pi) {
    const int oi = perm_[static_cast<size_t>(pi)];
    for (int k = a.row_ptr[static_cast<size_t>(oi)];
         k < a.row_ptr[static_cast<size_t>(oi) + 1]; ++k) {
      a_slot_.push_back(k);
      a_pcol_.push_back(iperm_[static_cast<size_t>(a.col[static_cast<size_t>(k)])]);
    }
    arow_ptr_.push_back(static_cast<int>(a_slot_.size()));

    std::set<int> cols;
    std::set<int> todo;
    for (int k = arow_ptr_[static_cast<size_t>(pi)];
         k < arow_ptr_[static_cast<size_t>(pi) + 1]; ++k) {
      const int c = a_pcol_[static_cast<size_t>(k)];
      cols.insert(c);
      if (c < pi) todo.insert(c);
    }
    cols.insert(pi);  // the pivot always exists structurally
    while (!todo.empty()) {
      const int j = *todo.begin();
      todo.erase(todo.begin());
      for (int c : urows[static_cast<size_t>(j)]) {
        if (c == j) continue;
        if (cols.insert(c).second && c < pi) todo.insert(c);
      }
    }
    std::vector<int>& urow = urows[static_cast<size_t>(pi)];
    for (int c : cols) {
      if (c < pi) {
        lcol_.push_back(c);
      } else {
        urow.push_back(c);  // ascending; diagonal pi first
      }
    }
    ucol_.insert(ucol_.end(), urow.begin(), urow.end());
    lrow_ptr_.push_back(static_cast<int>(lcol_.size()));
    urow_ptr_.push_back(static_cast<int>(ucol_.size()));
  }
  lval_.assign(lcol_.size(), 0.0);
  uval_.assign(ucol_.size(), 0.0);
  work_.assign(static_cast<size_t>(n), 0.0);
}

FactorStatus SparseLu::factor(const Csr& a, double pivot_rel_tol) {
  assert(analyzed() && a.rows == n_ && a.cols == n_);
  FactorStatus st;
  st.scale = a.max_abs();
  if (n_ == 0) return st;
  if (st.scale == 0.0) {
    st.failure = FactorFailure::kEmptyMatrix;
    return st;
  }
  const double threshold = pivot_rel_tol * st.scale;
  double* w = work_.data();
  for (int i = 0; i < n_; ++i) {
    // Scatter the permuted A row over the row's fill pattern.
    for (int k = lrow_ptr_[static_cast<size_t>(i)];
         k < lrow_ptr_[static_cast<size_t>(i) + 1]; ++k) {
      w[lcol_[static_cast<size_t>(k)]] = 0.0;
    }
    for (int k = urow_ptr_[static_cast<size_t>(i)];
         k < urow_ptr_[static_cast<size_t>(i) + 1]; ++k) {
      w[ucol_[static_cast<size_t>(k)]] = 0.0;
    }
    for (int k = arow_ptr_[static_cast<size_t>(i)];
         k < arow_ptr_[static_cast<size_t>(i) + 1]; ++k) {
      w[a_pcol_[static_cast<size_t>(k)]] +=
          a.val[static_cast<size_t>(a_slot_[static_cast<size_t>(k)])];
    }
    // Eliminate below-diagonal columns in ascending order.
    for (int k = lrow_ptr_[static_cast<size_t>(i)];
         k < lrow_ptr_[static_cast<size_t>(i) + 1]; ++k) {
      const int j = lcol_[static_cast<size_t>(k)];
      const int jb = urow_ptr_[static_cast<size_t>(j)];
      const double f = w[j] / uval_[static_cast<size_t>(jb)];  // u_jj first
      w[j] = f;
      for (int t = jb + 1; t < urow_ptr_[static_cast<size_t>(j) + 1]; ++t) {
        w[ucol_[static_cast<size_t>(t)]] -=
            f * uval_[static_cast<size_t>(t)];
      }
      lval_[static_cast<size_t>(k)] = f;
    }
    const int ib = urow_ptr_[static_cast<size_t>(i)];
    const double pivot = w[ucol_[static_cast<size_t>(ib)]];
    if (std::abs(pivot) < threshold) {
      st.failure = FactorFailure::kSmallPivot;
      st.row = perm_[static_cast<size_t>(i)];
      st.pivot_abs = std::abs(pivot);
      return st;
    }
    for (int k = ib; k < urow_ptr_[static_cast<size_t>(i) + 1]; ++k) {
      uval_[static_cast<size_t>(k)] = w[ucol_[static_cast<size_t>(k)]];
    }
  }
  return st;
}

void SparseLu::solve(const double* b, double* x) {
  double* y = work_.data();
  for (int i = 0; i < n_; ++i) {
    double sum = b[perm_[static_cast<size_t>(i)]];
    for (int k = lrow_ptr_[static_cast<size_t>(i)];
         k < lrow_ptr_[static_cast<size_t>(i) + 1]; ++k) {
      sum -= lval_[static_cast<size_t>(k)] * y[lcol_[static_cast<size_t>(k)]];
    }
    y[i] = sum;  // L has unit diagonal
  }
  for (int i = n_ - 1; i >= 0; --i) {
    const int ib = urow_ptr_[static_cast<size_t>(i)];
    double sum = y[i];
    for (int k = ib + 1; k < urow_ptr_[static_cast<size_t>(i) + 1]; ++k) {
      sum -= uval_[static_cast<size_t>(k)] * y[ucol_[static_cast<size_t>(k)]];
    }
    y[i] = sum / uval_[static_cast<size_t>(ib)];
  }
  for (int i = 0; i < n_; ++i) x[perm_[static_cast<size_t>(i)]] = y[i];
}

void SparseLu::solve(const std::vector<double>& b, std::vector<double>& x) {
  assert(static_cast<int>(b.size()) == n_);
  x.resize(static_cast<size_t>(n_));
  solve(b.data(), x.data());
}

FactorStatus dense_lu_solve(std::vector<double>& a, std::vector<double>& b,
                            int n, double pivot_rel_tol) {
  FactorStatus st;
  if (n == 0) return st;
  double scale = 0.0;
  for (int i = 0; i < n * n; ++i) {
    scale = std::max(scale, std::abs(a[static_cast<size_t>(i)]));
  }
  st.scale = scale;
  if (scale == 0.0) {
    st.failure = FactorFailure::kEmptyMatrix;
    return st;
  }
  const double threshold = pivot_rel_tol * scale;
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    double best = std::abs(a[static_cast<size_t>(col) * n + col]);
    for (int r = col + 1; r < n; ++r) {
      const double v = std::abs(a[static_cast<size_t>(r) * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < threshold) {
      st.failure = FactorFailure::kSmallPivot;
      st.row = col;
      st.pivot_abs = best;
      return st;
    }
    if (pivot != col) {
      for (int c = col; c < n; ++c) {
        std::swap(a[static_cast<size_t>(col) * n + c],
                  a[static_cast<size_t>(pivot) * n + c]);
      }
      std::swap(b[static_cast<size_t>(col)], b[static_cast<size_t>(pivot)]);
    }
    const double diag = a[static_cast<size_t>(col) * n + col];
    for (int r = col + 1; r < n; ++r) {
      const double f = a[static_cast<size_t>(r) * n + col] / diag;
      if (f == 0.0) continue;
      a[static_cast<size_t>(r) * n + col] = 0.0;
      for (int c = col + 1; c < n; ++c) {
        a[static_cast<size_t>(r) * n + c] -=
            f * a[static_cast<size_t>(col) * n + c];
      }
      b[static_cast<size_t>(r)] -= f * b[static_cast<size_t>(col)];
    }
  }
  for (int r = n - 1; r >= 0; --r) {
    double sum = b[static_cast<size_t>(r)];
    for (int c = r + 1; c < n; ++c) {
      sum -= a[static_cast<size_t>(r) * n + c] * b[static_cast<size_t>(c)];
    }
    b[static_cast<size_t>(r)] = sum / a[static_cast<size_t>(r) * n + r];
  }
  return st;
}

}  // namespace m3d::numeric
