// Shared sparse numeric kernel layer: deterministic CSR assembly and
// ordered sparse matrix-vector products.
//
// Assembly contract: triplets accumulate in a COO buffer (duplicates
// allowed) and `CsrBuilder::build` canonicalizes them — stable sort by
// (row, col), duplicates summed left-to-right in insertion order — so the
// resulting matrix is a pure function of the triplet *sequence*. Parallel
// assemblers that produce per-chunk builders and merge them in chunk order
// (exec::parallel_reduce's contract) therefore build bit-identical
// matrices at any thread count. SpMV accumulates each row left-to-right in
// stored (ascending-column) order: fixed summation order, deterministic to
// the last ULP.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/mem.hpp"

namespace m3d::numeric {

/// Compressed-sparse-row matrix. Columns are ascending within each row and
/// unique (build() sums duplicates). `diag_slot[i]` indexes val at (i, i),
/// or -1 when the diagonal entry is structurally absent.
struct Csr {
  int rows = 0;
  int cols = 0;
  std::vector<int> row_ptr;    // size rows + 1
  std::vector<int> col;        // size nnz, ascending within each row
  obs::vector<double> val;     // size nnz (counted: solver memory shows up
                               // in per-stage profiles, see obs/mem.hpp)
  std::vector<int> diag_slot;  // size rows

  size_t nnz() const { return col.size(); }

  /// y = A x, row-major with a fixed left-to-right accumulation per row.
  /// x must have `cols` elements and y `rows`; x and y must not alias.
  void spmv(const double* x, double* y) const;
  void spmv(const std::vector<double>& x, std::vector<double>& y) const;

  /// Max |a_ij| over all stored entries (0 for an empty matrix) — the
  /// scale that relative pivot/convergence thresholds are measured
  /// against. Fixed scan order.
  double max_abs() const;
};

/// COO triplet accumulator. `add` order is the only state that matters:
/// two builders fed the same triplet sequence build identical matrices.
class CsrBuilder {
 public:
  CsrBuilder(int rows, int cols) : rows_(rows), cols_(cols) {}

  void reserve(size_t n) { trips_.reserve(n); }
  /// Appends one triplet. Out-of-range indices are a caller bug (asserted).
  void add(int row, int col, double v);
  /// Appends every triplet of `other` after this builder's, in order.
  void merge(const CsrBuilder& other);
  size_t size() const { return trips_.size(); }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Canonicalizes to CSR: stable sort by (row, col) — insertion order
  /// breaks ties — then duplicates sum left-to-right. When `slot_of_add`
  /// is non-null it receives, per add() call index, the val slot that
  /// call's contribution landed in (the stamp program used by repeated
  /// numeric reassembly, e.g. the SPICE Newton loop).
  Csr build(std::vector<int>* slot_of_add = nullptr) const;

 private:
  struct Trip {
    int r, c;
    double v;
  };
  int rows_, cols_;
  std::vector<Trip> trips_;
};

}  // namespace m3d::numeric
