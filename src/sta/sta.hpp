// Graph-based static timing analysis: levelized forward propagation of
// arrival times and slews through NLDM lookups plus Elmore net delays, and a
// backward required-time pass for per-instance slack. Sign-off timing for
// the iso-performance comparisons (paper Section 2).
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "extract/parasitics.hpp"

namespace m3d::sta {

struct StaOptions {
  double clock_ns = 1.0;
  double primary_input_slew_ps = 20.0;
  double clock_slew_ps = 20.0;
  /// Degradation of slew across a net: slew' = sqrt(slew^2 + (k*elmore)^2).
  double slew_degrade_k = 2.0;
};

struct TimingResult {
  // Indexed by NetId: arrival/slew at the *driver output pin* of the net.
  std::vector<double> arrival_ps;
  std::vector<double> slew_ps;
  // Indexed by NetId: required time at the driver pin.
  std::vector<double> required_ps;
  // Indexed by InstId: worst slack over the instance's output nets.
  std::vector<double> inst_slack_ps;
  // Indexed by NetId: total load seen by the net's driver (wire + pins), fF.
  std::vector<double> load_ff;

  double wns_ps = 0.0;  // worst slack at timing endpoints (>= 0: timing met)
  double tns_ps = 0.0;  // total negative slack
  double critical_path_ps = 0.0;  // longest endpoint arrival
  circuit::NetId critical_endpoint = circuit::kInvalid;

  bool met() const { return wns_ps >= 0.0; }
};

/// Elmore-style net delay from driver to sink `k`.
double net_delay_ps(const extract::NetParasitics& par, size_t sink_idx,
                    double sink_pin_cap_ff);

TimingResult run_sta(const circuit::Netlist& nl, const extract::Parasitics& par,
                     const StaOptions& opt);

/// Hold (min-delay) analysis: propagates *earliest* arrivals and checks
/// every flop D pin against its hold requirement (same-edge capture).
/// Returns the worst hold slack (>= 0: no hold violations) and the count of
/// violating endpoints.
struct HoldResult {
  double worst_slack_ps = 0.0;
  int violations = 0;
};
HoldResult run_hold_check(const circuit::Netlist& nl,
                          const extract::Parasitics& par,
                          const StaOptions& opt);

/// Human-readable critical path report (for examples/debugging).
std::string report_critical_path(const circuit::Netlist& nl,
                                 const TimingResult& timing);

}  // namespace m3d::sta
