#include "sta/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "exec/exec.hpp"
#include "util/metrics.hpp"
#include "util/strf.hpp"
#include "util/trace.hpp"

namespace m3d::sta {
namespace {

constexpr double kInf = std::numeric_limits<double>::max() / 4;
constexpr double kPoLoadFf = 2.0;  // assumed load on primary outputs

/// Pin capacitance of a sink (0 for primary outputs).
double sink_cap_ff(const circuit::Netlist& nl, const circuit::PinRef& s) {
  if (s.inst == circuit::kInvalid) return kPoLoadFf;
  const circuit::Instance& inst = nl.inst(s.inst);
  if (inst.libcell == nullptr) return 0.0;
  const auto pins = cells::input_pins(inst.func);
  return inst.libcell->input_cap_ff(pins[static_cast<size_t>(s.pin)]);
}

}  // namespace

double net_delay_ps(const extract::NetParasitics& par, size_t sink_idx,
                    double sink_pin_cap_ff) {
  // Elmore with the wire cap split around the sink resistance.
  return par.sink_res(sink_idx) * (0.5 * par.wire_cap_ff + sink_pin_cap_ff);
}

TimingResult run_sta(const circuit::Netlist& nl, const extract::Parasitics& par,
                     const StaOptions& opt) {
  // Counters only (no span): run_sta sits inside the optimizer's inner loop,
  // so per-call span logging would swamp the debug stream. The histogram
  // still captures every call's duration.
  const util::ScopedMsObserver observer("sta.run_sta_ms");
  util::count("sta.runs");
  const int num_nets = nl.num_nets();
  const int num_inst = nl.num_instances();
  const double clock_ps = opt.clock_ns * 1000.0;
  assert(static_cast<int>(par.size()) == num_nets);

  TimingResult r;
  r.arrival_ps.assign(static_cast<size_t>(num_nets), 0.0);
  r.slew_ps.assign(static_cast<size_t>(num_nets), opt.primary_input_slew_ps);
  r.required_ps.assign(static_cast<size_t>(num_nets), kInf);
  r.inst_slack_ps.assign(static_cast<size_t>(num_inst), kInf);
  r.load_ff.assign(static_cast<size_t>(num_nets), 0.0);

  // Loads: each net writes only its own slot.
  exec::parallel_for(static_cast<size_t>(num_nets), [&](size_t nb, size_t ne) {
    for (size_t n = nb; n < ne; ++n) {
      const circuit::Net& net = nl.net(static_cast<circuit::NetId>(n));
      double load = par[n].wire_cap_ff;
      for (const auto& s : net.sinks) load += sink_cap_ff(nl, s);
      r.load_ff[n] = load;
    }
  });

  // Arrival/slew at each instance input pin.
  std::vector<std::vector<double>> arr_in(static_cast<size_t>(num_inst));
  std::vector<std::vector<double>> slew_in(static_cast<size_t>(num_inst));
  for (int i = 0; i < num_inst; ++i) {
    const size_t nin = nl.inst(i).in_nets.size();
    arr_in[static_cast<size_t>(i)].assign(nin, 0.0);
    slew_in[static_cast<size_t>(i)].assign(nin, opt.primary_input_slew_ps);
  }

  auto propagate_net = [&](circuit::NetId n) {
    const circuit::Net& net = nl.net(n);
    const auto& p = par[static_cast<size_t>(n)];
    for (size_t k = 0; k < net.sinks.size(); ++k) {
      const auto& s = net.sinks[k];
      if (s.inst == circuit::kInvalid) continue;
      const double nd = net_delay_ps(p, k, sink_cap_ff(nl, s));
      const double elmore = nd;
      arr_in[static_cast<size_t>(s.inst)][static_cast<size_t>(s.pin)] =
          r.arrival_ps[static_cast<size_t>(n)] + nd;
      const double sl = r.slew_ps[static_cast<size_t>(n)];
      slew_in[static_cast<size_t>(s.inst)][static_cast<size_t>(s.pin)] =
          std::sqrt(sl * sl + opt.slew_degrade_k * opt.slew_degrade_k * elmore * elmore);
    }
  };

  // Sources: primary-input nets and DFF outputs.
  for (circuit::NetId n = 0; n < num_nets; ++n) {
    const circuit::Net& net = nl.net(n);
    if (net.is_primary_input || net.is_clock) {
      r.arrival_ps[static_cast<size_t>(n)] = 0.0;
      r.slew_ps[static_cast<size_t>(n)] =
          net.is_clock ? opt.clock_slew_ps : opt.primary_input_slew_ps;
      propagate_net(n);
    }
  }
  for (int i = 0; i < num_inst; ++i) {
    const circuit::Instance& inst = nl.inst(i);
    if (inst.dead || !inst.sequential() || inst.libcell == nullptr) continue;
    const circuit::NetId q = inst.out_nets[0];
    const liberty::TimingArc* arc = inst.libcell->arc("CK", "Q");
    const double load = r.load_ff[static_cast<size_t>(q)];
    r.arrival_ps[static_cast<size_t>(q)] =
        arc != nullptr ? arc->worst_delay(opt.clock_slew_ps, load) : 0.0;
    r.slew_ps[static_cast<size_t>(q)] =
        arc != nullptr ? arc->worst_slew(opt.clock_slew_ps, load) : opt.clock_slew_ps;
    propagate_net(q);
  }

  // Forward pass over combinational instances, one topological level at a
  // time. Levels use the same edge rule as topo_order (combinational
  // drivers only), so every value an instance reads (its arr_in/slew_in,
  // written by its drivers' propagate_net) is finalized by the barrier
  // between levels. Within a level all writes are disjoint — an instance
  // touches only its own output nets' arrival/slew and its sink pins'
  // arr_in/slew_in, each of which has exactly one driver — so the chunks
  // can run concurrently and the result is bit-identical to serial.
  const std::vector<circuit::InstId> order = nl.topo_order();
  util::count("sta.arrivals_propagated", static_cast<double>(order.size()));
  std::vector<int> level(static_cast<size_t>(num_inst), 0);
  std::vector<std::vector<circuit::InstId>> levels;
  for (circuit::InstId id : order) {
    const circuit::Instance& inst = nl.inst(id);
    int lv = 0;
    if (!inst.sequential()) {
      for (circuit::NetId in : inst.in_nets) {
        const auto& drv = nl.net(in).driver;
        if (drv.inst != circuit::kInvalid && !nl.inst(drv.inst).sequential()) {
          lv = std::max(lv, level[static_cast<size_t>(drv.inst)] + 1);
        }
      }
    }
    level[static_cast<size_t>(id)] = lv;
    if (inst.sequential() || inst.libcell == nullptr) continue;
    if (static_cast<size_t>(lv) >= levels.size()) {
      levels.resize(static_cast<size_t>(lv) + 1);
    }
    levels[static_cast<size_t>(lv)].push_back(id);
  }
  util::set_gauge("sta.levels", static_cast<double>(levels.size()));
  constexpr size_t kLevelGrain = 32;  // fixed => same chunks at any threads
  for (const auto& bucket : levels) {
    exec::parallel_for(
        bucket.size(),
        [&](size_t kb, size_t ke) {
          for (size_t k = kb; k < ke; ++k) {
            const circuit::InstId id = bucket[k];
            const circuit::Instance& inst = nl.inst(id);
            const auto in_pins = cells::input_pins(inst.func);
            const auto out_pins = cells::output_pins(inst.func);
            for (size_t o = 0; o < inst.out_nets.size(); ++o) {
              const circuit::NetId out = inst.out_nets[o];
              const double load = r.load_ff[static_cast<size_t>(out)];
              double arr = 0.0, slew = opt.primary_input_slew_ps;
              for (size_t p = 0; p < inst.in_nets.size(); ++p) {
                const liberty::TimingArc* arc =
                    inst.libcell->arc(in_pins[p], out_pins[o]);
                if (arc == nullptr) continue;
                const double in_slew = slew_in[static_cast<size_t>(id)][p];
                const double d = arc->worst_delay(in_slew, load);
                const double a = arr_in[static_cast<size_t>(id)][p] + d;
                if (a > arr) {
                  arr = a;
                  slew = arc->worst_slew(in_slew, load);
                }
              }
              r.arrival_ps[static_cast<size_t>(out)] = arr;
              r.slew_ps[static_cast<size_t>(out)] = slew;
              propagate_net(out);
            }
          }
        },
        kLevelGrain);
  }

  // Endpoint slacks: DFF D pins and primary outputs.
  r.wns_ps = kInf;
  r.tns_ps = 0.0;
  std::vector<std::vector<double>> req_in(static_cast<size_t>(num_inst));
  for (int i = 0; i < num_inst; ++i) {
    req_in[static_cast<size_t>(i)].assign(nl.inst(i).in_nets.size(), kInf);
  }
  auto note_endpoint = [&](double arrival, double required,
                           circuit::NetId net) {
    const double slack = required - arrival;
    if (slack < r.wns_ps) {
      r.wns_ps = slack;
    }
    if (slack < 0) r.tns_ps += slack;
    if (arrival > r.critical_path_ps) {
      r.critical_path_ps = arrival;
      r.critical_endpoint = net;
    }
  };
  for (int i = 0; i < num_inst; ++i) {
    const circuit::Instance& inst = nl.inst(i);
    if (inst.dead || !inst.sequential() || inst.libcell == nullptr) continue;
    // D pin is input 0 of the DFF.
    const double arr = arr_in[static_cast<size_t>(i)][0];
    const double req = clock_ps - inst.libcell->setup_ps;
    req_in[static_cast<size_t>(i)][0] = req;
    note_endpoint(arr, req, inst.in_nets[0]);
  }
  for (circuit::NetId n = 0; n < num_nets; ++n) {
    const circuit::Net& net = nl.net(n);
    if (!net.is_primary_output) continue;
    note_endpoint(r.arrival_ps[static_cast<size_t>(n)], clock_ps, n);
  }
  if (r.wns_ps >= kInf / 2) r.wns_ps = clock_ps;  // no endpoints

  // Backward pass: required time at each net's driver pin. Levels run
  // highest-first; an instance reads req_in of its sinks (all at strictly
  // higher levels, or DFF D pins pre-set above) and writes only its own
  // output nets' required_ps and its own req_in entries, so within a level
  // the chunks are independent and the result matches the serial reverse
  // topological sweep bit for bit.
  for (auto lit = levels.rbegin(); lit != levels.rend(); ++lit) {
    const auto& bucket = *lit;
    exec::parallel_for(
        bucket.size(),
        [&](size_t kb, size_t ke) {
          for (size_t k = kb; k < ke; ++k) {
            const circuit::InstId id = bucket[k];
            const circuit::Instance& inst = nl.inst(id);
            const auto in_pins = cells::input_pins(inst.func);
            const auto out_pins = cells::output_pins(inst.func);
            // Required at each output net driver = min over sinks.
            for (size_t o = 0; o < inst.out_nets.size(); ++o) {
              const circuit::NetId out = inst.out_nets[o];
              const circuit::Net& net = nl.net(out);
              double req = net.is_primary_output ? clock_ps : kInf;
              const auto& p = par[static_cast<size_t>(out)];
              for (size_t sk = 0; sk < net.sinks.size(); ++sk) {
                const auto& s = net.sinks[sk];
                if (s.inst == circuit::kInvalid) continue;
                const double nd = net_delay_ps(p, sk, sink_cap_ff(nl, s));
                req = std::min(
                    req, req_in[static_cast<size_t>(s.inst)]
                               [static_cast<size_t>(s.pin)] - nd);
              }
              r.required_ps[static_cast<size_t>(out)] = req;
              // Push through the cell to its input pins.
              const double load = r.load_ff[static_cast<size_t>(out)];
              for (size_t pi = 0; pi < inst.in_nets.size(); ++pi) {
                const liberty::TimingArc* arc =
                    inst.libcell->arc(in_pins[pi], out_pins[o]);
                if (arc == nullptr) continue;
                const double d =
                    arc->worst_delay(slew_in[static_cast<size_t>(id)][pi], load);
                req_in[static_cast<size_t>(id)][pi] =
                    std::min(req_in[static_cast<size_t>(id)][pi], req - d);
              }
            }
          }
        },
        kLevelGrain);
  }
  // Required at source nets (DFF outputs / PIs) for completeness.
  for (circuit::NetId n = 0; n < num_nets; ++n) {
    if (r.required_ps[static_cast<size_t>(n)] < kInf) continue;
    const circuit::Net& net = nl.net(n);
    double req = net.is_primary_output ? clock_ps : kInf;
    const auto& p = par[static_cast<size_t>(n)];
    for (size_t k = 0; k < net.sinks.size(); ++k) {
      const auto& s = net.sinks[k];
      if (s.inst == circuit::kInvalid) continue;
      const double nd = net_delay_ps(p, k, sink_cap_ff(nl, s));
      req = std::min(req, req_in[static_cast<size_t>(s.inst)][static_cast<size_t>(s.pin)] - nd);
    }
    r.required_ps[static_cast<size_t>(n)] = req;
  }

  // Per-instance slack.
  for (int i = 0; i < num_inst; ++i) {
    const circuit::Instance& inst = nl.inst(i);
    if (inst.dead || inst.libcell == nullptr) continue;
    double slack = kInf;
    for (circuit::NetId out : inst.out_nets) {
      slack = std::min(slack, r.required_ps[static_cast<size_t>(out)] -
                                  r.arrival_ps[static_cast<size_t>(out)]);
    }
    r.inst_slack_ps[static_cast<size_t>(i)] = slack;
  }
  return r;
}

HoldResult run_hold_check(const circuit::Netlist& nl,
                          const extract::Parasitics& par,
                          const StaOptions& opt) {
  const int num_nets = nl.num_nets();
  const int num_inst = nl.num_instances();
  // Earliest arrival per net driver pin; min over arcs with *min* table
  // lookups (we reuse the NLDM tables; min over rise/fall).
  std::vector<double> early(static_cast<size_t>(num_nets), 0.0);
  std::vector<double> load(static_cast<size_t>(num_nets), 0.0);
  for (circuit::NetId n = 0; n < num_nets; ++n) {
    const circuit::Net& net = nl.net(n);
    double l = par[static_cast<size_t>(n)].wire_cap_ff;
    for (const auto& s : net.sinks) {
      if (s.inst == circuit::kInvalid) continue;
      const auto& si = nl.inst(s.inst);
      if (si.libcell == nullptr) continue;
      const auto pins = cells::input_pins(si.func);
      l += si.libcell->input_cap_ff(pins[static_cast<size_t>(s.pin)]);
    }
    load[static_cast<size_t>(n)] = l;
  }
  std::vector<std::vector<double>> early_in(static_cast<size_t>(num_inst));
  for (int i = 0; i < num_inst; ++i) {
    early_in[static_cast<size_t>(i)].assign(nl.inst(i).in_nets.size(), 0.0);
  }
  auto push = [&](circuit::NetId n) {
    const circuit::Net& net = nl.net(n);
    for (size_t k = 0; k < net.sinks.size(); ++k) {
      const auto& s = net.sinks[k];
      if (s.inst == circuit::kInvalid) continue;
      const double nd =
          net_delay_ps(par[static_cast<size_t>(n)], k, sink_cap_ff(nl, s));
      early_in[static_cast<size_t>(s.inst)][static_cast<size_t>(s.pin)] =
          early[static_cast<size_t>(n)] + nd;
    }
  };
  // Primary inputs are externally timed: their paths cannot create hold
  // violations at internal flops, so they carry a huge early arrival.
  constexpr double kExternallyTimed = 1e7;
  for (circuit::NetId n = 0; n < num_nets; ++n) {
    if (nl.net(n).is_primary_input || nl.net(n).is_clock) {
      early[static_cast<size_t>(n)] = kExternallyTimed;
      push(n);
    }
  }
  for (int i = 0; i < num_inst; ++i) {
    const auto& inst = nl.inst(i);
    if (inst.dead || !inst.sequential() || inst.libcell == nullptr) continue;
    const circuit::NetId q = inst.out_nets[0];
    const liberty::TimingArc* arc = inst.libcell->arc("CK", "Q");
    double d = 0.0;
    if (arc != nullptr) {
      d = std::min(arc->delay[0].at(opt.clock_slew_ps, load[static_cast<size_t>(q)]),
                   arc->delay[1].at(opt.clock_slew_ps, load[static_cast<size_t>(q)]));
    }
    early[static_cast<size_t>(q)] = d;
    push(q);
  }
  for (circuit::InstId id : nl.topo_order()) {
    const auto& inst = nl.inst(id);
    if (inst.sequential() || inst.libcell == nullptr) continue;
    const auto in_pins = cells::input_pins(inst.func);
    const auto out_pins = cells::output_pins(inst.func);
    for (size_t o = 0; o < inst.out_nets.size(); ++o) {
      const circuit::NetId out = inst.out_nets[o];
      double best = std::numeric_limits<double>::max();
      for (size_t p = 0; p < inst.in_nets.size(); ++p) {
        const liberty::TimingArc* arc =
            inst.libcell->arc(in_pins[p], out_pins[o]);
        if (arc == nullptr) continue;
        const double d =
            std::min(arc->delay[0].at(opt.primary_input_slew_ps,
                                      load[static_cast<size_t>(out)]),
                     arc->delay[1].at(opt.primary_input_slew_ps,
                                      load[static_cast<size_t>(out)]));
        best = std::min(best, early_in[static_cast<size_t>(id)][p] + d);
      }
      early[static_cast<size_t>(out)] =
          best == std::numeric_limits<double>::max() ? 0.0 : best;
      push(out);
    }
  }
  HoldResult res;
  res.worst_slack_ps = std::numeric_limits<double>::max();
  for (int i = 0; i < num_inst; ++i) {
    const auto& inst = nl.inst(i);
    if (inst.dead || !inst.sequential() || inst.libcell == nullptr) continue;
    const double arr = early_in[static_cast<size_t>(i)][0];
    if (arr > kExternallyTimed / 2) continue;  // PI-fed: externally timed
    const double slack = arr - inst.libcell->hold_ps;
    if (slack < res.worst_slack_ps) res.worst_slack_ps = slack;
    if (slack < 0) ++res.violations;
  }
  if (res.worst_slack_ps == std::numeric_limits<double>::max()) {
    res.worst_slack_ps = 0.0;
  }
  return res;
}

std::string report_critical_path(const circuit::Netlist& nl,
                                 const TimingResult& timing) {
  std::string out = util::strf("critical path: %.1f ps, WNS %+.1f ps\n",
                               timing.critical_path_ps, timing.wns_ps);
  circuit::NetId n = timing.critical_endpoint;
  int hops = 0;
  while (n != circuit::kInvalid && hops++ < 64) {
    const circuit::Net& net = nl.net(n);
    out += util::strf("  net %-20s arr=%8.1f slew=%6.1f\n", net.name.c_str(),
                      timing.arrival_ps[static_cast<size_t>(n)],
                      timing.slew_ps[static_cast<size_t>(n)]);
    if (net.driver.inst == circuit::kInvalid) break;
    const circuit::Instance& d = nl.inst(net.driver.inst);
    if (d.sequential()) break;
    // Walk to the input with the latest arrival.
    circuit::NetId best = circuit::kInvalid;
    double best_arr = -1.0;
    for (circuit::NetId in : d.in_nets) {
      if (timing.arrival_ps[static_cast<size_t>(in)] > best_arr) {
        best_arr = timing.arrival_ps[static_cast<size_t>(in)];
        best = in;
      }
    }
    n = best;
  }
  return out;
}

}  // namespace m3d::sta
