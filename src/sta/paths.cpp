#include "sta/paths.hpp"

#include <algorithm>
#include <cmath>

#include "util/strf.hpp"

namespace m3d::sta {
namespace {

/// Endpoint list: (slack, net, is_flop_d). Flop endpoints use the D-pin
/// arrival (net arrival + net delay), primary outputs the net arrival.
struct Endpoint {
  double slack_ps;
  double arrival_ps;
  circuit::NetId net;
  bool is_flop;
};

std::vector<Endpoint> endpoints(const circuit::Netlist& nl,
                                const extract::Parasitics& par,
                                const TimingResult& timing,
                                const StaOptions& opt) {
  const double clock_ps = opt.clock_ns * 1000.0;
  std::vector<Endpoint> out;
  for (int i = 0; i < nl.num_instances(); ++i) {
    const auto& inst = nl.inst(i);
    if (inst.dead || !inst.sequential() || inst.libcell == nullptr) continue;
    const circuit::NetId d = inst.in_nets[0];
    const auto& net = nl.net(d);
    // Find this pin's sink index for the per-sink Elmore delay.
    double nd = 0.0;
    for (size_t k = 0; k < net.sinks.size(); ++k) {
      if (net.sinks[k].inst == i && net.sinks[k].pin == 0) {
        nd = net_delay_ps(par[static_cast<size_t>(d)], k,
                          inst.libcell->input_cap_ff("D"));
      }
    }
    const double arr = timing.arrival_ps[static_cast<size_t>(d)] + nd;
    out.push_back({clock_ps - inst.libcell->setup_ps - arr, arr, d, true});
  }
  for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
    if (!nl.net(n).is_primary_output) continue;
    const double arr = timing.arrival_ps[static_cast<size_t>(n)];
    out.push_back({clock_ps - arr, arr, n, false});
  }
  return out;
}

}  // namespace

double TimingPath::total_cell_delay() const {
  double d = 0.0;
  for (const auto& s : steps) d += s.cell_delay_ps;
  return d;
}

double TimingPath::total_net_delay() const {
  double d = 0.0;
  for (const auto& s : steps) d += s.net_delay_ps;
  return d;
}

std::vector<TimingPath> worst_paths(const circuit::Netlist& nl,
                                    const extract::Parasitics& par,
                                    const TimingResult& timing,
                                    const StaOptions& opt, int k) {
  auto eps = endpoints(nl, par, timing, opt);
  std::sort(eps.begin(), eps.end(),
            [](const Endpoint& a, const Endpoint& b) { return a.slack_ps < b.slack_ps; });
  std::vector<TimingPath> paths;
  for (int e = 0; e < k && e < static_cast<int>(eps.size()); ++e) {
    TimingPath path;
    path.slack_ps = eps[static_cast<size_t>(e)].slack_ps;
    path.arrival_ps = eps[static_cast<size_t>(e)].arrival_ps;
    path.ends_at_flop = eps[static_cast<size_t>(e)].is_flop;
    circuit::NetId n = eps[static_cast<size_t>(e)].net;
    int guard = 0;
    while (n != circuit::kInvalid && guard++ < 512) {
      const auto& net = nl.net(n);
      PathStep step;
      step.net = n;
      step.driver = net.driver.inst;
      step.arrival_ps = timing.arrival_ps[static_cast<size_t>(n)];
      path.steps.push_back(step);
      if (net.driver.inst == circuit::kInvalid) break;
      const auto& drv = nl.inst(net.driver.inst);
      if (drv.sequential()) break;
      // Walk to the input with the latest pin arrival (net arrival +
      // per-sink net delay to this instance).
      circuit::NetId best = circuit::kInvalid;
      double best_arr = -1.0;
      double best_nd = 0.0;
      for (size_t p = 0; p < drv.in_nets.size(); ++p) {
        const circuit::NetId in = drv.in_nets[p];
        const auto& in_net = nl.net(in);
        double nd = 0.0;
        for (size_t s = 0; s < in_net.sinks.size(); ++s) {
          if (in_net.sinks[s].inst == net.driver.inst &&
              in_net.sinks[s].pin == static_cast<int>(p)) {
            nd = net_delay_ps(par[static_cast<size_t>(in)], s, 0.5);
          }
        }
        const double arr = timing.arrival_ps[static_cast<size_t>(in)] + nd;
        if (arr > best_arr) {
          best_arr = arr;
          best = in;
          best_nd = nd;
        }
      }
      if (best != circuit::kInvalid) {
        path.steps.back().cell_delay_ps =
            step.arrival_ps - best_arr;
        path.steps.back().net_delay_ps = best_nd;
      }
      n = best;
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

SlackHistogram slack_histogram(const circuit::Netlist& nl,
                               const TimingResult& timing, int buckets) {
  SlackHistogram h;
  std::vector<double> slacks;
  for (int i = 0; i < nl.num_instances(); ++i) {
    const auto& inst = nl.inst(i);
    if (inst.dead || !inst.sequential() || inst.libcell == nullptr) continue;
    // Endpoint slack at the D pin approximated from the driver-pin numbers.
    const circuit::NetId d = inst.in_nets[0];
    slacks.push_back(timing.required_ps[static_cast<size_t>(d)] -
                     timing.arrival_ps[static_cast<size_t>(d)]);
  }
  h.endpoints = static_cast<int>(slacks.size());
  if (slacks.empty() || buckets < 1) return h;
  const auto [lo_it, hi_it] = std::minmax_element(slacks.begin(), slacks.end());
  double lo = *lo_it, hi = *hi_it;
  if (hi - lo < 1e-9) hi = lo + 1.0;
  h.counts.assign(static_cast<size_t>(buckets), 0);
  for (int b = 0; b <= buckets; ++b) {
    h.edges_ps.push_back(lo + (hi - lo) * b / buckets);
  }
  for (double s : slacks) {
    int b = static_cast<int>((s - lo) / (hi - lo) * buckets);
    b = std::clamp(b, 0, buckets - 1);
    ++h.counts[static_cast<size_t>(b)];
  }
  return h;
}

std::string report_paths(const circuit::Netlist& nl,
                         const std::vector<TimingPath>& paths) {
  std::string out;
  for (size_t p = 0; p < paths.size(); ++p) {
    const auto& path = paths[p];
    out += util::strf(
        "Path %zu: slack %+.1f ps, arrival %.1f ps (cell %.1f + net %.1f),"
        " ends at %s\n",
        p + 1, path.slack_ps, path.arrival_ps, path.total_cell_delay(),
        path.total_net_delay(), path.ends_at_flop ? "flop D" : "output");
    for (const auto& step : path.steps) {
      const char* drv =
          step.driver == circuit::kInvalid
              ? "(source)"
              : (nl.inst(step.driver).libcell != nullptr
                     ? nl.inst(step.driver).libcell->name.c_str()
                     : "?");
      out += util::strf("    %-24s %-10s arr=%8.1f cell=%6.1f net=%5.1f\n",
                        nl.net(step.net).name.c_str(), drv, step.arrival_ps,
                        step.cell_delay_ps, step.net_delay_ps);
    }
  }
  return out;
}

}  // namespace m3d::sta
