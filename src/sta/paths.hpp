// Path-level timing reports on top of the graph STA: the K worst endpoint
// paths (walked back along worst-arrival inputs), slack histograms, and a
// per-path breakdown of cell vs wire delay — the report_timing surface a
// sign-off user expects.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "extract/parasitics.hpp"
#include "sta/sta.hpp"

namespace m3d::sta {

struct PathStep {
  circuit::NetId net = circuit::kInvalid;
  circuit::InstId driver = circuit::kInvalid;  // kInvalid: PI or flop source
  double arrival_ps = 0.0;
  double cell_delay_ps = 0.0;  // driver's contribution
  double net_delay_ps = 0.0;   // wire contribution into the next stage
};

struct TimingPath {
  std::vector<PathStep> steps;  // endpoint first, source last
  double slack_ps = 0.0;
  double arrival_ps = 0.0;
  bool ends_at_flop = false;

  double total_cell_delay() const;
  double total_net_delay() const;
};

/// The K worst endpoint paths (distinct endpoints), worst first.
std::vector<TimingPath> worst_paths(const circuit::Netlist& nl,
                                    const extract::Parasitics& par,
                                    const TimingResult& timing,
                                    const StaOptions& opt, int k);

/// Endpoint slack histogram: `buckets` equal-width bins between the worst
/// and best endpoint slack. Returns bin counts plus the bin edges.
struct SlackHistogram {
  std::vector<int> counts;
  std::vector<double> edges_ps;  // counts.size() + 1
  int endpoints = 0;
};
SlackHistogram slack_histogram(const circuit::Netlist& nl,
                               const TimingResult& timing, int buckets = 10);

/// Multi-path textual report.
std::string report_paths(const circuit::Netlist& nl,
                         const std::vector<TimingPath>& paths);

}  // namespace m3d::sta
