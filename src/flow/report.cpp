#include "flow/report.hpp"

#include <cctype>
#include <fstream>

#include "util/metrics.hpp"

namespace m3d::report {

using util::json::Value;

namespace {

Value metrics_block(const flow::FlowResult& r) {
  Value m = Value::object();
  m.set("footprint_um2", Value::number(r.footprint_um2));
  m.set("cells", Value::number(r.cells));
  m.set("buffers", Value::number(r.buffers));
  m.set("utilization", Value::number(r.utilization));
  m.set("total_wl_um", Value::number(r.total_wl_um));
  m.set("wns_ps", Value::number(r.wns_ps));
  m.set("timing_met", Value::boolean(r.timing_met));
  m.set("routed", Value::boolean(r.routed));
  m.set("total_uw", Value::number(r.total_uw));
  m.set("cell_uw", Value::number(r.cell_uw));
  m.set("net_uw", Value::number(r.net_uw));
  m.set("leak_uw", Value::number(r.leak_uw));
  m.set("wire_uw", Value::number(r.wire_uw));
  m.set("pin_uw", Value::number(r.pin_uw));
  m.set("wire_cap_pf", Value::number(r.wire_cap_pf));
  m.set("pin_cap_pf", Value::number(r.pin_cap_pf));
  m.set("longest_path_ns", Value::number(r.longest_path_ns));
  return m;
}

Value stage_to_json(const flow::StageReport& s, bool canonical) {
  Value v = Value::object();
  v.set("name", Value::str(s.name));
  v.set("wall_ms", Value::number(canonical ? 0.0 : s.wall_ms));
  Value counters = Value::object();
  for (const auto& [key, value] : s.counters) {
    counters.set(key, Value::number(value));
  }
  v.set("counters", std::move(counters));
  // The memory profile exists only on traced runs (all-zero otherwise), so
  // untraced reports serialize without a "mem" key — byte-identical to a
  // build that predates the trace subsystem. Canonical form zeroes the
  // machine-dependent values but keeps the key: presence is deterministic
  // for a given FlowOptions, the numbers are not.
  if (s.rss_mb != 0.0 || s.hwm_mb != 0.0 || s.alloc_mb != 0.0 ||
      s.allocs != 0) {
    Value mem = Value::object();
    mem.set("rss_mb", Value::number(canonical ? 0.0 : s.rss_mb));
    mem.set("hwm_mb", Value::number(canonical ? 0.0 : s.hwm_mb));
    mem.set("alloc_mb", Value::number(canonical ? 0.0 : s.alloc_mb));
    mem.set("allocs",
            Value::number(canonical ? 0.0 : static_cast<double>(s.allocs)));
    v.set("mem", std::move(mem));
  }
  return v;
}

Value trace_block(const flow::FlowResult& r, bool canonical) {
  Value t = Value::object();
  Value spans = Value::array();
  for (const obs::SpanSummary& s : r.trace_spans) {
    Value sp = Value::object();
    sp.set("name", Value::str(s.name));
    sp.set("count", Value::number(static_cast<double>(s.count)));
    sp.set("total_ms", Value::number(canonical ? 0.0 : s.total_ms));
    sp.set("self_ms", Value::number(canonical ? 0.0 : s.self_ms));
    spans.push(std::move(sp));
  }
  t.set("spans", std::move(spans));
  return t;
}

Value checks_block(const flow::FlowResult& r) {
  // Cap the serialized violation list: a badly broken run can produce one
  // violation per net, and the report must stay readable.
  constexpr size_t kMaxViolations = 32;
  Value c = Value::object();
  c.set("level", Value::str(check::to_string(r.check_level)));
  c.set("errors", Value::number(r.checks.errors()));
  c.set("warnings", Value::number(r.checks.warnings()));
  Value items = Value::array();
  size_t n = 0;
  for (const check::Violation& v : r.checks.violations) {
    if (n++ == kMaxViolations) break;
    Value item = Value::object();
    item.set("checker", Value::str(v.checker));
    item.set("code", Value::str(v.code));
    item.set("severity", Value::str(
        v.severity == check::Severity::kError ? "error" : "warning"));
    item.set("message", Value::str(v.message));
    items.push(std::move(item));
  }
  c.set("violations", std::move(items));
  if (r.checks.violations.size() > kMaxViolations) {
    c.set("truncated",
          Value::number(static_cast<double>(r.checks.violations.size())));
  }
  return c;
}

Value build_json(const flow::FlowResult& r, bool canonical) {
  Value doc = Value::object();
  // Untraced runs keep serializing the v2 document byte-for-byte (golden
  // snapshots and determinism tests compare against it); a traced run is a
  // v3 document: v2 plus the per-stage "mem" objects and the "trace" block.
  doc.set("schema", Value::str(r.trace_enabled ? "m3d.run_report/v3"
                                               : "m3d.run_report/v2"));
  doc.set("bench", Value::str(r.bench_name));
  doc.set("style", Value::str(tech::to_string(r.style)));
  doc.set("clock_ns", Value::number(r.clock_ns));
  // Decimal string: the seed is a full uint64 and must survive the double-
  // typed JSON number path losslessly (reproducibility from the CI log).
  doc.set("seed", Value::str(std::to_string(r.seed)));
  doc.set("metrics", metrics_block(r));
  doc.set("checks", checks_block(r));
  Value stages = Value::array();
  double total_ms = 0.0;
  for (const auto& s : r.stages) {
    stages.push(stage_to_json(s, canonical));
    total_ms += s.wall_ms;
  }
  doc.set("stages", std::move(stages));
  doc.set("total_wall_ms", Value::number(canonical ? 0.0 : total_ms));
  if (r.trace_enabled) doc.set("trace", trace_block(r, canonical));
  return doc;
}

}  // namespace

Value to_json(const flow::FlowResult& r) { return build_json(r, false); }

std::string to_json_string(const flow::FlowResult& r) {
  return to_json(r).dump() + "\n";
}

Value to_canonical_json(const flow::FlowResult& r) {
  return build_json(r, true);
}

std::string to_canonical_json_string(const flow::FlowResult& r) {
  return to_canonical_json(r).dump() + "\n";
}

bool write_json(const flow::FlowResult& r, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json_string(r);
  return static_cast<bool>(os);
}

bool parse_stages(const std::string& json_text,
                  std::vector<flow::StageReport>* out, std::string* err) {
  Value doc;
  if (!util::json::parse(json_text, &doc, err)) return false;
  const Value* stages = doc.find("stages");
  // Accept both a full report document and a bare stage array.
  if (stages == nullptr && doc.is_array()) stages = &doc;
  if (stages == nullptr || !stages->is_array()) {
    if (err != nullptr) *err = "no 'stages' array";
    return false;
  }
  out->clear();
  for (const Value& item : stages->items()) {
    if (!item.is_object()) {
      if (err != nullptr) *err = "stage entry is not an object";
      return false;
    }
    flow::StageReport sr;
    sr.name = item.string_or("name", "");
    sr.wall_ms = item.number_or("wall_ms", 0.0);
    if (const Value* counters = item.find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [key, value] : counters->members()) {
        sr.counters.emplace_back(key, value.as_number());
      }
    }
    if (const Value* mem = item.find("mem");
        mem != nullptr && mem->is_object()) {
      sr.rss_mb = mem->number_or("rss_mb", 0.0);
      sr.hwm_mb = mem->number_or("hwm_mb", 0.0);
      sr.alloc_mb = mem->number_or("alloc_mb", 0.0);
      sr.allocs = static_cast<int64_t>(mem->number_or("allocs", 0.0));
    }
    out->push_back(std::move(sr));
  }
  return true;
}

Value metrics_to_json() {
  auto& reg = util::MetricsRegistry::global();
  Value doc = Value::object();
  doc.set("schema", Value::str("m3d.metrics/v1"));
  Value counters = Value::object();
  for (const auto& [name, value] : reg.counters()) {
    counters.set(name, Value::number(value));
  }
  doc.set("counters", std::move(counters));
  Value gauges = Value::object();
  for (const auto& [name, value] : reg.gauges()) {
    gauges.set(name, Value::number(value));
  }
  doc.set("gauges", std::move(gauges));
  Value hists = Value::object();
  for (const auto& [name, h] : reg.histograms()) {
    Value stats = Value::object();
    stats.set("count", Value::number(static_cast<double>(h.count)));
    stats.set("min", Value::number(h.min));
    stats.set("mean", Value::number(h.mean));
    stats.set("max", Value::number(h.max));
    stats.set("p95", Value::number(h.p95));
    stats.set("total", Value::number(h.total));
    if (h.approximate) stats.set("approximate", Value::boolean(true));
    hists.set(name, std::move(stats));
  }
  doc.set("histograms", std::move(hists));
  return doc;
}

bool write_metrics_json(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << metrics_to_json().dump() << '\n';
  return static_cast<bool>(os);
}

std::string report_filename(const std::string& bench,
                            const std::string& style) {
  auto sanitize = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '.' || c == '_' || c == '-';
      out.push_back(ok ? c : '_');
    }
    return out;
  };
  return "run_" + sanitize(bench) + "_" + sanitize(style) + ".json";
}

}  // namespace m3d::report
