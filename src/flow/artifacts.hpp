// Stage-artifact keys and codecs for the content-addressed store
// (src/store): the bridge between run_flow / WarmContext and Store.
//
// Key schema (DESIGN.md "Serve request keys" / "Result store"): each stage
// artifact keys on the *prefix* of the resolved canonical request that
// determines it, serialized as fixed-order compact JSON —
//
//   library  <- (provider, node, style)
//   clock    <- + (bench, scale_shift, seed, target_util, library fp)
//   netlist  <- (bench, scale_shift, seed)           [pure generator output]
//   place    <- + (node, style, clock_ns, target_util, tmi_wlm,
//                  resistivity_scale, build_cts, library fp)
//   report   <- the full request hash (serve/cache.hpp — unchanged key)
//
// The library fingerprint (FNV-1a-64 over the lossless binary encoding)
// appears in every key whose artifact was computed *against* a library, so
// two providers serving different cells for the same (node, style) can
// never poison each other's clocks or placements. Custom WLMs and custom
// netlists have no canonical serialization in the key schema; options
// carrying them bypass the affected artifacts (store_usable /
// netlist-hash substitution below).
//
// Codecs are bit-exact (store/blob.hpp): library tables, netlist state and
// placement coordinates round-trip as raw IEEE-754 bit patterns, never
// text — the acceptance bar is that a store-hit flow emits the same
// canonical report bytes as a cold flow. Each blob also carries the
// StageReports of the stages it lets run_flow skip, so replayed reports
// keep the per-stage counters byte-identical in the canonical report.
#pragma once

#include <cstdint>
#include <string>

#include "flow/flow.hpp"
#include "liberty/library.hpp"
#include "store/store.hpp"
#include "tech/tech.hpp"

namespace m3d::flow::artifacts {

/// The store directory for `opt_dir`: itself when non-empty, else the
/// M3D_STORE environment variable, else "" (store disabled — the serial
/// fallback: every stage simply runs).
std::string resolved_store_dir(const std::string& opt_dir);

/// True when `opt` is expressible in the key schema at all (no custom WLM;
/// custom netlists are handled per-artifact via their structural hash).
bool store_usable(const FlowOptions& opt);

// --- library ---------------------------------------------------------------

/// Lossless binary encoding of a characterized library (every table value
/// as its exact bit pattern). decode_library returns false on malformed
/// input.
std::string encode_library(const liberty::Library& lib);
bool decode_library(const std::string& blob, liberty::Library* lib);

/// FNV-1a-64 of encode_library(lib): the identity of the exact numbers the
/// flow computes against.
uint64_t library_fingerprint(const liberty::Library& lib);

/// `provider_id` names who characterizes (e.g. "fixture"); two providers
/// must never share library entries.
std::string library_key(const std::string& provider_id, tech::Node node,
                        tech::Style style);

// --- auto-clock ------------------------------------------------------------

/// Key of the memoized auto_clock_ns probe result for `opt` (requires
/// opt.custom_netlist == nullptr). `lib_fp` fingerprints the library the
/// probe runs against (opt.lib).
std::string clock_key(const FlowOptions& opt, uint64_t lib_fp);

/// opt.clock_ns when positive; else the store-memoized probe (get, or run
/// auto_clock_ns and put). `store` may be null or disabled — then always a
/// fresh probe. opt.lib must be set.
double resolved_clock_ns(const FlowOptions& opt, const store::Store* store);

// --- generated netlist -----------------------------------------------------

/// Key of the generated benchmark netlist (requires custom_netlist ==
/// nullptr; generation does not depend on the library or style).
std::string netlist_key(const FlowOptions& opt);

/// Blob: exact netlist snapshot + the "gen" StageReport (res.stages[0]).
std::string encode_netlist_blob(const FlowResult& res);
/// Restores res->netlist and appends the stored StageReport to
/// res->stages. False on malformed input (caller falls back to running).
bool decode_netlist_blob(const std::string& blob, FlowResult* res);

// --- placement -------------------------------------------------------------

/// Key of the placed (and CTS'd) design: everything that determines stages
/// gen/synth/place. `opt.clock_ns` must already be resolved (> 0). A
/// custom netlist contributes its structural hash in place of the bench.
std::string place_key(const FlowOptions& opt, uint64_t lib_fp);

/// Blob: exact post-place netlist snapshot + die + the "gen"/"synth"/
/// "place" StageReports (res.stages[0..2]).
std::string encode_place_blob(const FlowResult& res);
/// Restores res->netlist (unbound — caller rebinds) and res->die, appends
/// the three stored StageReports. False on malformed input.
bool decode_place_blob(const std::string& blob, FlowResult* res);

}  // namespace m3d::flow::artifacts
