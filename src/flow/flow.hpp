// The full design-and-analysis flow of paper Fig 1: library prep ->
// synthesis (WLM) -> placement -> pre-route optimization -> global routing ->
// post-route optimization -> sign-off STA + statistical power. One call per
// (benchmark, node, style); the comparison harness runs 2D and T-MI at the
// same clock (iso-performance) and reports the paper's metrics.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "circuit/netlist.hpp"
#include "gen/gen.hpp"
#include "liberty/library.hpp"
#include "obs/trace.hpp"
#include "place/place.hpp"
#include "power/power.hpp"
#include "route/route.hpp"
#include "synth/wlm.hpp"
#include "tech/tech.hpp"

namespace m3d::flow {

/// Per-stage observability record: wall time plus the counters the stage's
/// instrumentation incremented while it ran (e.g. "route.twopins",
/// "opt.upsized"). run_flow emits one per flow stage, in execution order;
/// report::write_json serializes them into the machine-readable run report.
struct StageReport {
  std::string name;
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, double>> counters;
  // Memory profile of the stage, populated only when FlowOptions::trace /
  // M3D_TRACE is on (all zero otherwise): process RSS and peak RSS at stage
  // exit, and the CountingAllocator traffic (obs/mem.hpp) during the stage.
  double rss_mb = 0.0;
  double hwm_mb = 0.0;
  double alloc_mb = 0.0;
  int64_t allocs = 0;

  double counter(const std::string& key) const {
    for (const auto& [k, v] : counters) {
      if (k == key) return v;
    }
    return 0.0;
  }
};

struct FlowOptions {
  gen::Bench bench = gen::Bench::kAes;
  tech::Node node = tech::Node::k45nm;
  tech::Style style = tech::Style::k2D;
  int scale_shift = 3;        // benchmark size knob (see gen::GenOptions)
  double clock_ns = 0.0;      // 0: auto (see auto_clock_ns)
  double target_util = 0.8;   // paper: 0.8 (0.33 LDPC, 0.68 M256)
  const liberty::Library* lib = nullptr;  // required
  std::optional<synth::Wlm> wlm;  // custom WLM; default: statistical (x0.75
                                  // for T-MI styles, paper Section 3.4)
  bool tmi_wlm = true;        // false: use the 2D WLM for T-MI (Table 15)
  double local_blockage_frac = -1.0;  // -1: default (0.03 for T-MI, 0 for 2D)
  double resistivity_scale = 1.0;     // local+intermediate derate (Table 9)
  double pi_activity = 0.2;
  double seq_activity = 0.1;
  bool build_cts = true;  // buffered clock tree (counted in WL and power)
  uint64_t seed = 20130529;
  /// Stage-invariant checking after sign-off (src/check): kBasic runs the
  /// O(V+E) netlist/timing/power checkers on every run; kFull adds
  /// placement legality, routing DRC and library sanity. Violations land in
  /// FlowResult::checks, the "check" StageReport counters
  /// ("check.violations", "check.<checker>.violations") and the JSON run
  /// report; run_flow never aborts on them.
  check::Level check_level = check::Level::kBasic;
  /// When set, the gen stage copies this netlist instead of generating
  /// `bench` (the fuzz driver pushes random circuits through the flow this
  /// way). Must outlive the call; `seed` still controls place/route.
  const circuit::Netlist* custom_netlist = nullptr;
  /// Content-addressed stage-artifact store directory (src/store): when
  /// set (or via the M3D_STORE environment variable), run_flow memoizes
  /// and reuses its expensive prefixes — the generated netlist, the placed
  /// (+CTS) design and the auto-clock probe — across runs, processes and
  /// daemon restarts. Replayed stages keep their recorded StageReports, so
  /// a store-hit run's canonical report is byte-identical to a cold run's.
  /// Empty and no M3D_STORE: the serial fallback — every stage runs.
  std::string store_dir;
  /// Structured trace collection (src/obs) for this run: span timeline
  /// events, exec pool activity, stage-boundary memory samples, and a span
  /// summary + per-stage "mem" block in the run report (schema becomes
  /// m3d.run_report/v3). Also enabled by M3D_TRACE=1 in the environment.
  /// Off (the default): canonical outputs are byte-identical to a build
  /// without the trace subsystem.
  bool trace = false;
  /// Stage-boundary hook: invoked once per flow stage, right after its
  /// StageReport is appended, on the thread executing the flow. The serving
  /// layer streams these to clients mid-run. The callback must not re-enter
  /// the flow and must tolerate being called from pool worker threads (the
  /// iso-comparison driver runs flows on the exec pool). Never affects the
  /// computed result.
  std::function<void(const StageReport&)> stage_observer;
};

struct FlowResult {
  // Identification.
  std::string bench_name;
  tech::Style style = tech::Style::k2D;
  double clock_ns = 0.0;
  // Table 13/14 columns.
  double footprint_um2 = 0.0;
  int cells = 0;
  int buffers = 0;
  double utilization = 0.0;
  double total_wl_um = 0.0;
  double wns_ps = 0.0;
  bool timing_met = false;
  bool routed = false;
  double total_uw = 0.0;
  double cell_uw = 0.0;
  double net_uw = 0.0;
  double leak_uw = 0.0;
  // Supplement S8 split.
  double wire_uw = 0.0;
  double pin_uw = 0.0;
  double wire_cap_pf = 0.0;
  double pin_cap_pf = 0.0;
  double longest_path_ns = 0.0;
  // Full state for snapshots / further analysis.
  circuit::Netlist netlist;
  place::Die die;
  route::RouteResult routes;
  // Observability: one entry per flow stage, in execution order.
  std::vector<StageReport> stages;
  // Reproducibility + correctness record: the seed that produced this run
  // (serialized into the run report so any failure replays from the log),
  // the check level it ran at, and every invariant violation found.
  uint64_t seed = 0;
  check::Level check_level = check::Level::kNone;
  check::CheckResult checks;
  // Trace collection record (FlowOptions::trace / M3D_TRACE): whether this
  // run was traced, and the deterministic per-span-name summary (sorted by
  // name) that report::to_json serializes into the v3 "trace" block.
  bool trace_enabled = false;
  std::vector<obs::SpanSummary> trace_spans;

  const StageReport* stage(const std::string& name) const {
    for (const auto& s : stages) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

/// Runs the complete flow once. opt.lib must outlive the call.
FlowResult run_flow(const FlowOptions& opt);

/// Determines a closable clock for (bench, node, style=2D) by probing the
/// critical path after synthesis at a loose clock, scaled by `tighten`.
double auto_clock_ns(const FlowOptions& base, double tighten = 1.05);

struct CompareResult {
  FlowResult flat;  // 2D
  FlowResult tmi;   // T-MI (or T-MI+M)
  /// Percent change of v3 over v2. A zero baseline (e.g. leak_uw at coarse
  /// scale shifts) yields 0 when both are zero, else a signed infinity, so
  /// the ratio never divides by zero.
  double pct(double v3, double v2) const {
    if (v2 == 0.0) {
      if (v3 == 0.0) return 0.0;
      return std::copysign(std::numeric_limits<double>::infinity(), v3);
    }
    return 100.0 * (v3 / v2 - 1.0);
  }
  double footprint_pct() const { return pct(tmi.footprint_um2, flat.footprint_um2); }
  double wl_pct() const { return pct(tmi.total_wl_um, flat.total_wl_um); }
  double power_pct() const { return pct(tmi.total_uw, flat.total_uw); }
  double cell_power_pct() const { return pct(tmi.cell_uw, flat.cell_uw); }
  double net_power_pct() const { return pct(tmi.net_uw, flat.net_uw); }
  double leakage_pct() const { return pct(tmi.leak_uw, flat.leak_uw); }
  double buffer_pct() const {
    return pct(static_cast<double>(tmi.buffers), static_cast<double>(flat.buffers));
  }
};

/// Iso-performance comparison: runs 2D, then the 3D style, at the same
/// clock. `opt.style` selects the 3D style (kTMI or kTMIPlusM);
/// `lib2d`/`lib3d` are the two characterized libraries.
CompareResult run_iso_comparison(const FlowOptions& opt,
                                 const liberty::Library& lib2d,
                                 const liberty::Library& lib3d);

/// Per-benchmark default scale shift (keeps the largest benchmarks tractable
/// while preserving the paper's size ordering).
int default_scale_shift(gen::Bench bench);

/// Per-benchmark default utilization (paper: LDPC 0.33, M256 0.68, else 0.8).
double default_utilization(gen::Bench bench);

}  // namespace m3d::flow
