// Reentrant warm-state handle: one process runs many flows without paying
// per-run setup again. The serving layer (src/serve) keeps exactly one of
// these alive for the daemon's lifetime; benches and tests can use it the
// same way.
//
// What stays warm:
//   * Libraries. A LibraryProvider builds the library for a (node, style)
//     pair once — characterization is the expensive cold-start the ROADMAP
//     "millions of users" item names — and every later flow at that corner
//     reuses the same immutable instance. Builds are serialized per corner
//     (std::call_once), so two concurrent first requests never characterize
//     twice, and requests for an already-warm corner never block behind a
//     build for a different one.
//   * Auto-clock probes. run_flow resolves clock_ns == 0 by synthesizing a
//     2D probe netlist; the result is a pure function of (bench, node,
//     scale_shift, seed, target_util), so WarmContext memoizes it and a
//     request flood at the same configuration pays for one probe.
//
// Thread-safety: every method is safe to call concurrently; run() itself is
// reentrant (run_flow keeps all mutable state flow-local, see src/exec's
// determinism contract). Counters: warm.lib_build / warm.lib_hit /
// warm.lib_load / warm.clock_probe / warm.clock_hit.
//
// With attach_store(), warm state additionally persists across process
// restarts: library characterizations and auto-clock probes are loaded from
// the content-addressed store (src/store) before being rebuilt, and run()
// threads the store directory into every flow so placements and generated
// netlists are reused too.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "flow/flow.hpp"
#include "liberty/library.hpp"
#include "store/store.hpp"
#include "tech/tech.hpp"

namespace m3d::flow {

class WarmContext {
 public:
  /// Builds the library for one (node, style) corner. Called at most once
  /// per corner for the lifetime of the context; may be slow
  /// (characterization) — concurrent requests for the same corner wait,
  /// requests for other corners proceed.
  using LibraryProvider =
      std::function<liberty::Library(tech::Node, tech::Style)>;

  explicit WarmContext(LibraryProvider provider);

  /// Backs this context with a persistent artifact store at `dir`:
  /// libraries and auto-clock probes are fetched from it before falling
  /// back to the provider / a fresh probe, and run() defaults
  /// FlowOptions::store_dir to `dir`. `provider_id` names the library
  /// provider in store keys (two providers must never share entries).
  /// Call before the first library()/run(); empty `dir` is a no-op.
  void attach_store(const std::string& dir, const std::string& provider_id);

  /// The attached store (null when attach_store was not called / no-op).
  const store::Store* store() const { return store_.get(); }

  /// The warm library for a corner (built on first use; never rebuilt).
  const liberty::Library& library(tech::Node node, tech::Style style);

  /// True when the corner's library has already been built (stats/ops).
  bool warmed(tech::Node node, tech::Style style) const;

  /// The resolved clock for `opt`: opt.clock_ns when positive, else the
  /// memoized auto_clock_ns probe result. `opt.lib` may be null — the probe
  /// uses the warm 2D library for opt.node.
  double clock_for(const FlowOptions& opt);

  /// run_flow with warm state filled in: opt.lib resolved from the corner
  /// (unless the caller pinned one), opt.clock_ns resolved via clock_for.
  FlowResult run(FlowOptions opt);

 private:
  struct Corner {
    std::once_flag once;
    std::unique_ptr<liberty::Library> lib;
  };

  Corner& corner(tech::Node node, tech::Style style);

  LibraryProvider provider_;
  std::unique_ptr<store::Store> store_;  // set once, before first use
  std::string provider_id_;
  mutable std::mutex mu_;  // guards corners_ map shape and clocks_
  std::map<std::pair<int, int>, std::unique_ptr<Corner>> corners_;
  std::map<std::string, double> clocks_;
};

}  // namespace m3d::flow
