#include "flow/flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

#include "cts/cts.hpp"
#include "exec/exec.hpp"
#include "extract/extract.hpp"
#include "flow/artifacts.hpp"
#include "obs/export.hpp"
#include "obs/mem.hpp"
#include "opt/opt.hpp"
#include "sta/sta.hpp"
#include "store/store.hpp"
#include "synth/synth.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strf.hpp"
#include "util/trace.hpp"

namespace m3d::flow {
namespace {

/// Runs one flow stage under a span and appends a StageReport to `res`:
/// wall time plus the delta of every counter the stage touched in the
/// thread's current sink (run_flow installs a flow-local one, so counter
/// deltas are exact even when several flows run concurrently). With
/// `tracing` the report additionally carries the stage's memory profile
/// (stage-exit RSS/peak-RSS, counting-allocator traffic), which is also
/// emitted as trace counter samples so the timeline shows memory tracks.
/// `observer` (FlowOptions::stage_observer) sees the finished report last,
/// after it is appended — the serving layer's progress stream.
template <typename Body>
void run_stage(FlowResult* res, const char* name, bool tracing,
               const std::function<void(const StageReport&)>& observer,
               Body&& body) {
  auto& reg = util::MetricsRegistry::current();
  const auto before = reg.counters();
  const uint64_t alloc_bytes0 = tracing ? obs::allocated_bytes() : 0;
  const uint64_t alloc_calls0 = tracing ? obs::allocation_calls() : 0;
  util::ScopedTimer timer(util::strf("flow.%s", name));
  body();
  StageReport sr;
  sr.name = name;
  sr.wall_ms = timer.stop();
  if (tracing) {
    const obs::MemSample mem = obs::sample_rss();
    sr.rss_mb = mem.rss_mb;
    sr.hwm_mb = mem.hwm_mb;
    sr.alloc_mb = static_cast<double>(obs::allocated_bytes() - alloc_bytes0) /
                  (1024.0 * 1024.0);
    sr.allocs = static_cast<int64_t>(obs::allocation_calls() - alloc_calls0);
    obs::emit_counter("mem.rss_mb", mem.rss_mb);
    obs::emit_counter("mem.hwm_mb", mem.hwm_mb);
    obs::emit_counter("mem.stage_alloc_mb", sr.alloc_mb);
  }
  for (const auto& [key, value] : reg.counters()) {
    const auto it = before.find(key);
    const double delta = value - (it == before.end() ? 0.0 : it->second);
    if (delta != 0.0) sr.counters.emplace_back(key, delta);
  }
  res->stages.push_back(std::move(sr));
  if (observer) observer(res->stages.back());
}

/// Store-hit path: appends nothing itself — the decoded blob already pushed
/// the recorded StageReports — but replays them to the observer so the
/// serving layer's progress stream sees every stage exactly once, in order,
/// whether it ran or was restored.
void replay_stages(const FlowResult& res, size_t first,
                   const std::function<void(const StageReport&)>& observer) {
  if (!observer) return;
  for (size_t i = first; i < res.stages.size(); ++i) observer(res.stages[i]);
}

synth::Wlm default_wlm(const FlowOptions& opt, const circuit::Netlist& nl,
                       const tech::Tech& tch) {
  // Expected core area from a rough pre-bind cell-count model.
  double cell_area = 0.0;
  for (int i = 0; i < nl.num_instances(); ++i) {
    const auto& inst = nl.inst(i);
    if (inst.dead) continue;
    const auto* c = opt.lib->pick(inst.func, inst.drive);
    if (c != nullptr) cell_area += c->area_um2();
  }
  const double core = cell_area / std::max(0.2, opt.target_util);
  synth::Wlm wlm = synth::make_statistical_wlm(core, tch);
  if (tch.is_3d() && opt.tmi_wlm) {
    // T-MI wires are ~25% shorter (paper Section 3.4); the T-MI WLM reflects
    // it, which changes the synthesized netlist.
    wlm = wlm.scaled(0.75);
  } else if (tch.is_3d() && !opt.tmi_wlm) {
    // Table 15 study: synthesize the T-MI design with the *2D* WLM: the
    // area estimate must then also be the 2D one (larger cells).
    const tech::Tech t2(opt.node, tech::Style::k2D);
    const double scale2d = t2.row_height_um() / tch.row_height_um();
    wlm = synth::make_statistical_wlm(core * scale2d, tch);
  }
  return wlm;
}

}  // namespace

int default_scale_shift(gen::Bench bench) {
  switch (bench) {
    case gen::Bench::kFpu: return 0;   // ~6k cells (full 52-bit mantissa)
    case gen::Bench::kAes: return 1;   // ~11k cells
    case gen::Bench::kLdpc: return 2;  // ~25k cells (longer global wires)
    case gen::Bench::kDes: return 1;   // ~6k cells (8 pipelined rounds)
    case gen::Bench::kM256: return 1;  // ~37k cells (128-bit)
  }
  return 2;
}

double default_utilization(gen::Bench bench) {
  switch (bench) {
    case gen::Bench::kLdpc: return 0.33;  // severe congestion (paper S6)
    case gen::Bench::kM256: return 0.68;
    default: return 0.8;
  }
}

FlowResult run_flow(const FlowOptions& opt_in) {
  assert(opt_in.lib != nullptr);
  // Honor the documented "clock_ns == 0: auto" contract here, not just in
  // run_iso_comparison: an unset clock used to flow a zero period into
  // optimization and power (1/clock), yielding NaN/inf results.
  FlowOptions opt = opt_in;
  // Content-addressed artifact store (src/store): disabled (every stage
  // runs — the serial fallback) when no directory is configured or the
  // options are outside the key schema (custom WLM).
  const store::Store store(artifacts::resolved_store_dir(opt.store_dir));
  const bool use_store = store.enabled() && artifacts::store_usable(opt);
  if (opt.clock_ns <= 0.0) {
    opt.clock_ns =
        artifacts::resolved_clock_ns(opt, use_store ? &store : nullptr);
  }
  tech::Tech tch(opt.node, opt.style);
  if (opt.resistivity_scale != 1.0) {
    tch.scale_resistivity(tech::LayerLevel::kLocal, opt.resistivity_scale);
    tch.scale_resistivity(tech::LayerLevel::kIntermediate, opt.resistivity_scale);
  }

  FlowResult res;
  res.style = opt.style;
  res.clock_ns = opt.clock_ns;
  res.seed = opt.seed;
  res.check_level = opt.check_level;

  // Trace collection window: opened before the flow span so the root span
  // lands in the timeline, attributed to this run's own trace flow (its
  // Chrome-trace pid). The real benchmark name replaces the placeholder
  // once gen has run.
  const bool tracing = opt.trace || obs::env_enabled();
  std::optional<obs::ScopedTraceEnable> trace_window;
  std::optional<obs::ScopedFlow> flow_attribution;
  uint32_t flow_id = 0;
  if (tracing) {
    trace_window.emplace();
    flow_id = obs::register_flow(util::strf("flow %s/%s",
                                            tech::to_string(opt.node),
                                            tech::to_string(opt.style)));
    flow_attribution.emplace(flow_id);
    res.trace_enabled = true;
  }
  util::ScopedTimer flow_span(
      util::strf("flow.run %s/%s", tech::to_string(opt.node),
                 tech::to_string(opt.style)));

  // All metrics of this run collect into a flow-local registry, published
  // into the parent sink only when the run finishes: concurrent flows (the
  // iso-comparison runs 2D and T-MI together) never interleave counters
  // inside each other's StageReports.
  util::MetricsRegistry& parent = util::MetricsRegistry::current();
  util::MetricsRegistry local;
  sta::TimingResult timing;
  power::PowerResult power;
  {
  const util::ScopedMetricsSink sink(local);

  // 0. Store lookup (outside any stage body, so the store.* counters never
  // leak into a StageReport and cold/warm canonical reports stay
  // byte-identical). A placement hit restores the exact post-place state —
  // netlist, die, and the recorded gen/synth/place StageReports — and the
  // flow resumes at pre-route optimization.
  circuit::Netlist& nl = res.netlist;
  uint64_t lib_fp = 0;
  std::string place_k;
  bool place_restored = false;
  if (use_store) {
    lib_fp = artifacts::library_fingerprint(*opt.lib);
    place_k = artifacts::place_key(opt, lib_fp);
    if (const auto blob = store.get("place", place_k)) {
      if (artifacts::decode_place_blob(*blob, &res)) {
        // Binding pointers are not serialized; rebinding against the same
        // library (same fingerprint, by key) reproduces them exactly.
        nl.bind(*opt.lib);
        res.bench_name = nl.name;
        replay_stages(res, 0, opt.stage_observer);
        place_restored = true;
      }
    }
  }

  if (!place_restored) {
    // 1. Benchmark netlist — itself store-backed: generation is a pure
    // function of (bench, scale_shift, seed).
    bool gen_restored = false;
    std::string netlist_k;
    const bool gen_storable = use_store && opt.custom_netlist == nullptr;
    if (gen_storable) {
      netlist_k = artifacts::netlist_key(opt);
      if (const auto blob = store.get("netlist", netlist_k)) {
        if (artifacts::decode_netlist_blob(*blob, &res)) {
          res.bench_name = nl.name;
          replay_stages(res, res.stages.size() - 1, opt.stage_observer);
          gen_restored = true;
        }
      }
    }
    if (!gen_restored) {
      run_stage(&res, "gen", tracing, opt.stage_observer, [&] {
        if (opt.custom_netlist != nullptr) {
          res.netlist = *opt.custom_netlist;
        } else {
          gen::GenOptions gopt;
          gopt.scale_shift = opt.scale_shift;
          gopt.seed = opt.seed;
          res.netlist = gen::make_benchmark(opt.bench, gopt);
        }
        res.bench_name = nl.name;
      });
      if (gen_storable &&
          !store.put("netlist", netlist_k,
                     artifacts::encode_netlist_blob(res))) {
        util::warn("store: failed to cache netlist artifact " + netlist_k);
      }
    }
  }
  if (tracing) {
    obs::set_flow_name(flow_id, util::strf("%s %s/%s", res.bench_name.c_str(),
                                           tech::to_string(opt.node),
                                           tech::to_string(opt.style)));
  }

  if (!place_restored) {
    // 2. Synthesis with the style's WLM.
    run_stage(&res, "synth", tracing, opt.stage_observer, [&] {
      const synth::Wlm wlm =
          opt.wlm.has_value() ? *opt.wlm : default_wlm(opt, nl, tch);
      synth::SynthOptions sopt;
      sopt.clock_ns = opt.clock_ns;
      synth::synthesize(&nl, *opt.lib, wlm, sopt);
    });

    // 3. Placement, plus clock tree synthesis (the tree's buffers/nets are
    // ordinary objects: routed, extracted and powered like everything else).
    run_stage(&res, "place", tracing, opt.stage_observer, [&] {
      res.die = place::make_die(&nl, opt.target_util, tch.row_height_um());
      place::PlaceOptions popt;
      popt.target_util = opt.target_util;
      popt.seed = opt.seed;
      place::place_design(&nl, res.die, popt);
      if (opt.build_cts) {
        cts::CtsOptions copt;
        copt.die = &res.die;  // keep clock buffers row-legal
        cts::build_clock_tree(&nl, *opt.lib, copt);
      }
    });
    if (use_store &&
        !store.put("place", place_k, artifacts::encode_place_blob(res))) {
      util::warn("store: failed to cache placement artifact " + place_k);
    }
  }

  // 4. Pre-route optimization on placement estimates.
  opt::OptOptions oopt;
  run_stage(&res, "opt_preroute", tracing, opt.stage_observer, [&] {
    oopt.clock_ns = opt.clock_ns;
    oopt.die = &res.die;  // keep inserted buffers row-legal
    oopt.allow_buffering = true;
    oopt.buffer_net_wl_um =
        120.0 * (opt.node == tech::Node::k7nm ? 7.0 / 45.0 : 1.0);
    opt::optimize(&nl, *opt.lib,
                  [&](const circuit::Netlist& n) {
                    return extract::extract_from_placement(n, tch);
                  },
                  oopt);
  });

  // 5. Global routing.
  run_stage(&res, "route", tracing, opt.stage_observer, [&] {
    route::RouteOptions ropt;
    ropt.seed = opt.seed;
    ropt.local_blockage_frac =
        opt.local_blockage_frac >= 0.0 ? opt.local_blockage_frac
                                       : (tch.is_3d() ? 0.03 : 0.0);
    res.routes = route::global_route(nl, res.die, tch, ropt);
  });

  // 6. Post-route optimization: sizing only, routes preserved (paper S5).
  run_stage(&res, "opt_postroute", tracing, opt.stage_observer, [&] {
    opt::OptOptions oopt2 = oopt;
    oopt2.allow_buffering = false;
    opt::optimize(&nl, *opt.lib,
                  [&](const circuit::Netlist& n) {
                    return extract::extract_from_routes(n, tch, res.routes);
                  },
                  oopt2);
  });

  // 7. Sign-off timing and power.
  run_stage(&res, "sta_power", tracing, opt.stage_observer, [&] {
    const auto par = extract::extract_from_routes(nl, tch, res.routes);
    sta::StaOptions sta_opt;
    sta_opt.clock_ns = opt.clock_ns;
    timing = sta::run_sta(nl, par, sta_opt);
    power::PowerOptions pw;
    pw.clock_ns = opt.clock_ns;
    pw.vdd_v = opt.lib->vdd_v;
    pw.pi_activity = opt.pi_activity;
    pw.seq_activity = opt.seq_activity;
    power = power::run_power(nl, par, &timing, pw);
  });

  // 8. Invariant checks on every sign-off artifact (src/check). Violations
  // are recorded, counted and logged — never fatal — so sweeps and fuzz
  // runs see the complete picture instead of dying on the first breach.
  if (opt.check_level != check::Level::kNone) {
    run_stage(&res, "check", tracing, opt.stage_observer, [&] {
      check::CheckResult cr = check::check_netlist(nl);
      cr.merge(check::check_timing(nl, timing));
      cr.merge(check::check_power(nl, power));
      if (opt.check_level == check::Level::kFull) {
        cr.merge(check::check_placement(nl, res.die));
        cr.merge(check::check_routing(nl, res.routes, tch));
        cr.merge(check::check_library(*opt.lib));
      }
      for (const char* checker :
           {"netlist", "timing", "power", "placement", "routing", "library"}) {
        const int n = cr.count_for(checker);
        if (n > 0) {
          util::count(util::strf("check.%s.violations", checker),
                      static_cast<double>(n));
        }
      }
      if (!cr.violations.empty()) {
        util::count("check.violations",
                    static_cast<double>(cr.violations.size()));
        util::warn(util::strf("flow check (%s): %d error(s), %d warning(s)\n%s",
                              check::to_string(opt.check_level), cr.errors(),
                              cr.warnings(), cr.summary().c_str()));
      }
      res.checks = std::move(cr);
    });
  }
  }  // flow-local sink scope
  parent.merge_from(local);

  if (tracing) {
    // Close the root span before snapshotting so the summary sees every
    // span of this flow completed, then reduce this flow's events to the
    // deterministic per-name summary for the v3 report block.
    flow_span.stop();
    res.trace_spans = obs::summarize_spans(obs::snapshot(), flow_id);
  }

  const circuit::Netlist& nl = res.netlist;
  res.footprint_um2 = res.die.core.area();
  res.cells = 0;
  for (int i = 0; i < nl.num_instances(); ++i) {
    if (!nl.inst(i).dead) ++res.cells;
  }
  res.buffers = nl.count_buffers();
  res.utilization = place::utilization(nl, res.die);
  res.total_wl_um = res.routes.total_wl_um;
  res.wns_ps = timing.wns_ps;
  res.timing_met = timing.met();
  res.routed = res.routes.routed;
  res.total_uw = power.total_uw;
  res.cell_uw = power.cell_internal_uw;
  res.net_uw = power.net_switching_uw;
  res.leak_uw = power.leakage_uw;
  res.wire_uw = power.wire_uw;
  res.pin_uw = power.pin_uw;
  res.wire_cap_pf = power.wire_cap_pf;
  res.pin_cap_pf = power.pin_cap_pf;
  res.longest_path_ns = timing.critical_path_ps / 1000.0;
  util::info(util::strf(
      "flow %s/%s/%s clk=%.3fns: wl=%.3fmm wns=%+.0fps P=%.1fuW (%s)",
      res.bench_name.c_str(), tech::to_string(opt.node),
      tech::to_string(opt.style), opt.clock_ns, res.total_wl_um / 1000.0,
      res.wns_ps, res.total_uw, res.timing_met ? "met" : "VIOLATED"));
  return res;
}

double auto_clock_ns(const FlowOptions& base, double tighten) {
  FlowOptions probe = base;
  probe.style = tech::Style::k2D;
  probe.clock_ns = 1000.0;  // loose: no upsizing pressure
  tech::Tech tch(probe.node, probe.style);

  gen::GenOptions gopt;
  gopt.scale_shift = probe.scale_shift;
  gopt.seed = probe.seed;
  circuit::Netlist nl = probe.custom_netlist != nullptr
                            ? *probe.custom_netlist
                            : gen::make_benchmark(probe.bench, gopt);
  const synth::Wlm wlm = synth::make_statistical_wlm(
      1.0, tch);  // area refined below via default path
  (void)wlm;
  synth::SynthOptions sopt;
  sopt.clock_ns = probe.clock_ns;
  nl.bind(*probe.lib);
  synth::synthesize(&nl, *probe.lib,
                    [&] {
                      FlowOptions tmp = probe;
                      return default_wlm(tmp, nl, tch);
                    }(),
                    sopt);
  const auto par = synth::wlm_parasitics(
      nl, default_wlm(probe, nl, tch));
  sta::StaOptions sta_opt;
  sta_opt.clock_ns = probe.clock_ns;
  const auto timing = sta::run_sta(nl, par, sta_opt);
  const double cp_ns = timing.critical_path_ps / 1000.0;
  return cp_ns * tighten;
}

CompareResult run_iso_comparison(const FlowOptions& opt,
                                 const liberty::Library& lib2d,
                                 const liberty::Library& lib3d) {
  CompareResult cmp;
  FlowOptions o2 = opt;
  o2.style = tech::Style::k2D;
  o2.lib = &lib2d;
  FlowOptions o3 = opt;
  o3.style = (opt.style == tech::Style::k2D) ? tech::Style::kTMI : opt.style;
  o3.lib = &lib3d;

  const bool auto_clock = opt.clock_ns <= 0.0;
  bool tmi_valid = false;
  if (auto_clock) {
    o2.clock_ns = auto_clock_ns(o2);
    cmp.flat = run_flow(o2);
  } else {
    // Fixed clock: speculate that it holds for 2D and run the T-MI design
    // concurrently at the same clock. If the 2D run has to relax below,
    // the speculative T-MI result is discarded and redone at the final
    // clock — exactly what a serial sweep would have produced.
    o3.clock_ns = o2.clock_ns;
    exec::TaskGroup group(exec::default_pool());
    group.run([&] { cmp.flat = run_flow(o2); });
    group.run([&] { cmp.tmi = run_flow(o3); });
    group.wait();
    tmi_valid = true;
  }
  // The WLM-derived clock is optimistic about routed parasitics; relax to
  // the period the 2D design actually achieves (still iso-performance: the
  // T-MI run below uses the same final clock).
  for (int attempt = 0; attempt < 3 && !cmp.flat.timing_met; ++attempt) {
    o2.clock_ns = (o2.clock_ns * 1000.0 - cmp.flat.wns_ps) * 1.02 / 1000.0;
    cmp.flat = run_flow(o2);
  }
  // Then tighten while the 2D design has generous slack, so the comparison
  // runs under real timing pressure (only when the caller asked for auto).
  // Bisect between the tightest met clock and the loosest failed one.
  if (auto_clock && cmp.flat.timing_met) {
    double failed_clk = 0.0;  // loosest clock known to fail
    for (int attempt = 0; attempt < 5; ++attempt) {
      if (cmp.flat.wns_ps < 0.03 * o2.clock_ns * 1000.0) break;
      double trial_clk =
          (o2.clock_ns * 1000.0 - 0.8 * cmp.flat.wns_ps) / 1000.0;
      if (failed_clk > 0.0) {
        trial_clk = std::max(trial_clk, 0.5 * (failed_clk + o2.clock_ns));
      }
      if (trial_clk >= o2.clock_ns * 0.99) break;
      FlowOptions trial = o2;
      trial.clock_ns = trial_clk;
      FlowResult r = run_flow(trial);
      if (r.timing_met) {
        o2 = trial;
        cmp.flat = std::move(r);
      } else {
        failed_clk = trial_clk;
      }
    }
  }

  if (!tmi_valid || o3.clock_ns != o2.clock_ns) {
    o3.clock_ns = o2.clock_ns;  // iso-performance
    cmp.tmi = run_flow(o3);
  }
  // Iso-performance requires BOTH designs to close. If the T-MI run misses
  // (the folded DFF is a few percent slower), relax the shared clock and
  // rerun both — the pair shares nothing, so the reruns go concurrently.
  for (int attempt = 0;
       attempt < 3 && auto_clock && cmp.flat.timing_met && !cmp.tmi.timing_met;
       ++attempt) {
    const double new_clk =
        (o3.clock_ns * 1000.0 - cmp.tmi.wns_ps) * 1.02 / 1000.0;
    o2.clock_ns = new_clk;
    o3.clock_ns = new_clk;
    exec::TaskGroup group(exec::default_pool());
    group.run([&] { cmp.flat = run_flow(o2); });
    group.run([&] { cmp.tmi = run_flow(o3); });
    group.wait();
  }
  return cmp;
}

}  // namespace m3d::flow
