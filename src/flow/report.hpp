// Machine-readable run reports (schema "m3d.run_report/v2"): one JSON
// document per flow run with the identification (including the RNG seed,
// as a decimal string, so any run replays from its log), the Table 13/14
// metric block, the invariant-check record (level + violations, see
// src/check), and the per-stage wall-clock timings + counters collected by
// the instrumentation layer (util/trace.hpp, util/metrics.hpp). The benches
// drop one per run under out_figs/run_<bench>_<style>.json so later perf
// PRs can diff where the time goes; tests/golden snapshots the canonical
// form for regression.
//
// A run traced via FlowOptions::trace / M3D_TRACE serializes as schema
// "m3d.run_report/v3": the v2 document plus a per-stage "mem" object
// (stage-exit RSS, peak RSS, counting-allocator traffic) and a top-level
// "trace" block with the deterministic span-tree summary (per span name:
// count, total ms, self ms; sorted by name). Untraced runs keep producing
// v2 byte-for-byte, so goldens never see the new fields.
#pragma once

#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "util/json.hpp"

namespace m3d::report {

/// Full run report document for one flow result.
util::json::Value to_json(const flow::FlowResult& r);

/// to_json, pretty-printed.
std::string to_json_string(const flow::FlowResult& r);

/// Like to_json, but with every volatile field (wall_ms, total_wall_ms)
/// zeroed, so two runs that computed identical results serialize to
/// byte-identical documents regardless of machine speed or thread count.
/// The determinism tests compare serial vs parallel runs through this.
util::json::Value to_canonical_json(const flow::FlowResult& r);
std::string to_canonical_json_string(const flow::FlowResult& r);

/// Writes the run report; returns false when the file cannot be opened.
bool write_json(const flow::FlowResult& r, const std::string& path);

/// Parses a serialized run report back into stage reports (inverse of the
/// "stages" block of to_json). Used by tests and external tooling; returns
/// false on malformed input.
bool parse_stages(const std::string& json_text,
                  std::vector<flow::StageReport>* out,
                  std::string* err = nullptr);

/// Snapshot of the whole global metrics registry (counters, gauges,
/// histogram stats) as JSON — the report for interactive sessions
/// (m3d_shell) that run stages manually rather than through run_flow.
util::json::Value metrics_to_json();
bool write_metrics_json(const std::string& path);

/// "AES" + "T-MI" -> "run_AES_T-MI.json" (characters outside [A-Za-z0-9._-]
/// become '_').
std::string report_filename(const std::string& bench, const std::string& style);

}  // namespace m3d::report
