#include "flow/warm.hpp"

#include "flow/artifacts.hpp"
#include "util/metrics.hpp"
#include "util/strf.hpp"

namespace m3d::flow {

WarmContext::WarmContext(LibraryProvider provider)
    : provider_(std::move(provider)) {}

void WarmContext::attach_store(const std::string& dir,
                               const std::string& provider_id) {
  if (dir.empty()) return;
  store_ = std::make_unique<store::Store>(dir);
  provider_id_ = provider_id;
}

WarmContext::Corner& WarmContext::corner(tech::Node node, tech::Style style) {
  const std::pair<int, int> key{static_cast<int>(node),
                                static_cast<int>(style)};
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Corner>& slot = corners_[key];
  if (slot == nullptr) slot = std::make_unique<Corner>();
  return *slot;
}

const liberty::Library& WarmContext::library(tech::Node node,
                                             tech::Style style) {
  Corner& c = corner(node, style);
  // call_once serializes the (possibly slow) build per corner while holding
  // no lock of ours, so other corners stay available during a build.
  std::call_once(c.once, [&] {
    std::string key;
    if (store_ != nullptr && store_->enabled()) {
      key = artifacts::library_key(provider_id_, node, style);
      if (const auto blob = store_->get("library", key)) {
        auto lib = std::make_unique<liberty::Library>();
        if (artifacts::decode_library(*blob, lib.get())) {
          util::count("warm.lib_load");
          c.lib = std::move(lib);
          return;
        }
      }
    }
    util::count("warm.lib_build");
    c.lib = std::make_unique<liberty::Library>(provider_(node, style));
    if (store_ != nullptr && store_->enabled()) {
      store_->put("library", key, artifacts::encode_library(*c.lib));
    }
  });
  util::count("warm.lib_hit");
  return *c.lib;
}

bool WarmContext::warmed(tech::Node node, tech::Style style) const {
  const std::pair<int, int> key{static_cast<int>(node),
                                static_cast<int>(style)};
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = corners_.find(key);
  return it != corners_.end() && it->second->lib != nullptr;
}

double WarmContext::clock_for(const FlowOptions& opt) {
  if (opt.clock_ns > 0.0) return opt.clock_ns;
  // The probe is a pure function of these fields (auto_clock_ns always
  // probes the 2D corner regardless of opt.style). Custom netlists are not
  // memoizable by value; fall through to a fresh probe for those.
  const bool memoizable = opt.custom_netlist == nullptr;
  std::string key;
  if (memoizable) {
    key = util::strf("%s/%s/s%d/u%.6f/seed%llu", gen::to_string(opt.bench),
                     tech::to_string(opt.node), opt.scale_shift,
                     opt.target_util,
                     static_cast<unsigned long long>(opt.seed));
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = clocks_.find(key);
    if (it != clocks_.end()) {
      util::count("warm.clock_hit");
      return it->second;
    }
  }
  FlowOptions probe = opt;
  if (probe.lib == nullptr) {
    probe.lib = &library(opt.node, tech::Style::k2D);
  }
  util::count("warm.clock_probe");
  // The attached store (if any) persists the probe result across restarts;
  // a store hit skips the synthesis probe entirely (visible as store.hits).
  const double clock = artifacts::resolved_clock_ns(probe, store_.get());
  if (memoizable) {
    // A concurrent probe for the same key computed the identical value
    // (the probe is deterministic), so last-writer-wins is benign.
    const std::lock_guard<std::mutex> lock(mu_);
    clocks_[key] = clock;
  }
  return clock;
}

FlowResult WarmContext::run(FlowOptions opt) {
  if (opt.lib == nullptr) {
    opt.lib = &library(opt.node, opt.style);
  }
  if (opt.clock_ns <= 0.0) {
    opt.clock_ns = clock_for(opt);
  }
  if (opt.store_dir.empty() && store_ != nullptr) {
    opt.store_dir = store_->dir();
  }
  return run_flow(opt);
}

}  // namespace m3d::flow
