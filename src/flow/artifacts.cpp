#include "flow/artifacts.hpp"

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "circuit/snapshot.hpp"
#include "gen/gen.hpp"
#include "store/blob.hpp"
#include "util/strf.hpp"

namespace m3d::flow::artifacts {
namespace {

constexpr uint8_t kLibraryVersion = 1;
constexpr uint8_t kNetlistBlobVersion = 1;
constexpr uint8_t kPlaceBlobVersion = 1;

// --- shared sub-codecs -----------------------------------------------------

void encode_table(const liberty::NldmTable& t, store::BlobWriter* w) {
  w->u32(static_cast<uint32_t>(t.slew_ps.size()));
  for (const double v : t.slew_ps) w->f64(v);
  w->u32(static_cast<uint32_t>(t.load_ff.size()));
  for (const double v : t.load_ff) w->f64(v);
  w->u32(static_cast<uint32_t>(t.value.size()));
  for (const double v : t.value) w->f64(v);
}

bool decode_vec(store::BlobReader* r, std::vector<double>* out) {
  constexpr uint32_t kMaxValues = 1u << 24;
  uint32_t n = 0;
  if (!r->u32(&n) || n > kMaxValues) return false;
  out->resize(n);
  for (double& v : *out) {
    if (!r->f64(&v)) return false;
  }
  return true;
}

bool decode_table(store::BlobReader* r, liberty::NldmTable* t) {
  return decode_vec(r, &t->slew_ps) && decode_vec(r, &t->load_ff) &&
         decode_vec(r, &t->value);
}

void encode_stage_report(const StageReport& sr, store::BlobWriter* w) {
  w->str(sr.name);
  w->f64(sr.wall_ms);
  w->u32(static_cast<uint32_t>(sr.counters.size()));
  for (const auto& [key, value] : sr.counters) {
    w->str(key);
    w->f64(value);
  }
  w->f64(sr.rss_mb);
  w->f64(sr.hwm_mb);
  w->f64(sr.alloc_mb);
  w->i64(sr.allocs);
}

bool decode_stage_report(store::BlobReader* r, StageReport* sr) {
  constexpr uint32_t kMaxCounters = 1u << 20;
  uint32_t n = 0;
  if (!r->str(&sr->name) || !r->f64(&sr->wall_ms) || !r->u32(&n) ||
      n > kMaxCounters) {
    return false;
  }
  sr->counters.resize(n);
  for (auto& [key, value] : sr->counters) {
    if (!r->str(&key) || !r->f64(&value)) return false;
  }
  return r->f64(&sr->rss_mb) && r->f64(&sr->hwm_mb) && r->f64(&sr->alloc_mb) &&
         r->i64(&sr->allocs);
}

void encode_stage_reports(const FlowResult& res, size_t count,
                          store::BlobWriter* w) {
  w->u32(static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) encode_stage_report(res.stages[i], w);
}

bool decode_stage_reports(store::BlobReader* r, size_t expect,
                          std::vector<StageReport>* out) {
  uint32_t n = 0;
  if (!r->u32(&n) || n != expect) return false;
  for (uint32_t i = 0; i < n; ++i) {
    StageReport sr;
    if (!decode_stage_report(r, &sr)) return false;
    out->push_back(std::move(sr));
  }
  return true;
}

}  // namespace

std::string resolved_store_dir(const std::string& opt_dir) {
  if (!opt_dir.empty()) return opt_dir;
  const char* env = std::getenv("M3D_STORE");
  return env != nullptr ? std::string(env) : std::string();
}

bool store_usable(const FlowOptions& opt) {
  // A custom WLM has no canonical serialization in the key schema, and it
  // changes synthesis — memoizing under a key that omits it would alias
  // different designs. Fall back to running everything.
  return !opt.wlm.has_value();
}

// --- library ---------------------------------------------------------------

std::string encode_library(const liberty::Library& lib) {
  store::BlobWriter w;
  w.u8(kLibraryVersion);
  w.str(lib.name);
  w.i32(static_cast<int32_t>(lib.node));
  w.i32(static_cast<int32_t>(lib.style));
  w.f64(lib.vdd_v);
  w.u32(static_cast<uint32_t>(lib.cells().size()));
  for (const liberty::LibCell& c : lib.cells()) {
    w.str(c.name);
    w.u32(static_cast<uint32_t>(c.func));
    w.i32(c.drive);
    w.f64(c.width_um);
    w.f64(c.height_um);
    w.u32(static_cast<uint32_t>(c.pin_cap_ff.size()));
    for (const auto& [pin, cap] : c.pin_cap_ff) {  // std::map: sorted order
      w.str(pin);
      w.f64(cap);
    }
    w.f64(c.leakage_uw);
    w.u8(c.sequential ? 1 : 0);
    w.f64(c.setup_ps);
    w.f64(c.hold_ps);
    w.u32(static_cast<uint32_t>(c.arcs.size()));
    for (const liberty::TimingArc& arc : c.arcs) {
      w.str(arc.from);
      w.str(arc.to);
      for (int e = 0; e < 2; ++e) encode_table(arc.delay[e], &w);
      for (int e = 0; e < 2; ++e) encode_table(arc.out_slew[e], &w);
      for (int e = 0; e < 2; ++e) encode_table(arc.energy[e], &w);
    }
  }
  return w.take();
}

bool decode_library(const std::string& blob, liberty::Library* lib) {
  constexpr uint32_t kMaxCells = 1u << 20;
  store::BlobReader r(blob);
  uint8_t version = 0;
  if (!r.u8(&version) || version != kLibraryVersion) return false;
  liberty::Library out;
  int32_t node = 0;
  int32_t style = 0;
  uint32_t n_cells = 0;
  if (!r.str(&out.name) || !r.i32(&node) || !r.i32(&style) ||
      !r.f64(&out.vdd_v) || !r.u32(&n_cells) || n_cells > kMaxCells) {
    return false;
  }
  out.node = static_cast<tech::Node>(node);
  out.style = static_cast<tech::Style>(style);
  for (uint32_t i = 0; i < n_cells; ++i) {
    liberty::LibCell c;
    uint32_t func = 0;
    uint32_t n_pins = 0;
    if (!r.str(&c.name) || !r.u32(&func) || !r.i32(&c.drive) ||
        !r.f64(&c.width_um) || !r.f64(&c.height_um) || !r.u32(&n_pins) ||
        n_pins > kMaxCells) {
      return false;
    }
    c.func = static_cast<cells::Func>(func);
    for (uint32_t p = 0; p < n_pins; ++p) {
      std::string pin;
      double cap = 0.0;
      if (!r.str(&pin) || !r.f64(&cap)) return false;
      c.pin_cap_ff[pin] = cap;
    }
    uint8_t seq = 0;
    uint32_t n_arcs = 0;
    if (!r.f64(&c.leakage_uw) || !r.u8(&seq) || !r.f64(&c.setup_ps) ||
        !r.f64(&c.hold_ps) || !r.u32(&n_arcs) || n_arcs > kMaxCells) {
      return false;
    }
    c.sequential = seq != 0;
    c.arcs.resize(n_arcs);
    for (liberty::TimingArc& arc : c.arcs) {
      if (!r.str(&arc.from) || !r.str(&arc.to)) return false;
      for (int e = 0; e < 2; ++e) {
        if (!decode_table(&r, &arc.delay[e])) return false;
      }
      for (int e = 0; e < 2; ++e) {
        if (!decode_table(&r, &arc.out_slew[e])) return false;
      }
      for (int e = 0; e < 2; ++e) {
        if (!decode_table(&r, &arc.energy[e])) return false;
      }
    }
    out.add(std::move(c));
  }
  if (!r.at_end()) return false;
  *lib = std::move(out);
  return true;
}

uint64_t library_fingerprint(const liberty::Library& lib) {
  return store::fnv1a64(encode_library(lib));
}

std::string library_key(const std::string& provider_id, tech::Node node,
                        tech::Style style) {
  return util::strf(
      "{\"artifact\":\"library\",\"provider\":\"%s\",\"node\":\"%s\","
      "\"style\":\"%s\"}",
      provider_id.c_str(), tech::to_string(node), tech::to_string(style));
}

// --- auto-clock ------------------------------------------------------------

std::string clock_key(const FlowOptions& opt, uint64_t lib_fp) {
  // auto_clock_ns always probes the 2D corner of opt.node with opt.lib, a
  // pure function of exactly these fields (style, WLM knobs and routing
  // knobs never reach the probe).
  return util::strf(
      "{\"artifact\":\"clock\",\"bench\":\"%s\",\"node\":\"%s\","
      "\"scale_shift\":%d,\"seed\":\"%llu\",\"target_util\":%.17g,"
      "\"lib\":\"%s\"}",
      gen::to_string(opt.bench), tech::to_string(opt.node), opt.scale_shift,
      static_cast<unsigned long long>(opt.seed), opt.target_util,
      store::key_hex(lib_fp).c_str());
}

double resolved_clock_ns(const FlowOptions& opt, const store::Store* store) {
  if (opt.clock_ns > 0.0) return opt.clock_ns;
  const bool memoizable = store != nullptr && store->enabled() &&
                          store_usable(opt) && opt.custom_netlist == nullptr;
  std::string key;
  if (memoizable) {
    key = clock_key(opt, library_fingerprint(*opt.lib));
    if (const std::optional<std::string> blob = store->get("clock", key)) {
      store::BlobReader r(*blob);
      double clock = 0.0;
      if (r.f64(&clock) && r.at_end() && clock > 0.0) return clock;
    }
  }
  const double clock = auto_clock_ns(opt);
  if (memoizable) {
    store::BlobWriter w;
    w.f64(clock);
    store->put("clock", key, w.bytes());
  }
  return clock;
}

// --- generated netlist -----------------------------------------------------

std::string netlist_key(const FlowOptions& opt) {
  return util::strf(
      "{\"artifact\":\"netlist\",\"bench\":\"%s\",\"scale_shift\":%d,"
      "\"seed\":\"%llu\"}",
      gen::to_string(opt.bench), opt.scale_shift,
      static_cast<unsigned long long>(opt.seed));
}

std::string encode_netlist_blob(const FlowResult& res) {
  store::BlobWriter w;
  w.u8(kNetlistBlobVersion);
  circuit::encode_netlist(res.netlist, &w);
  encode_stage_reports(res, 1, &w);
  return w.take();
}

bool decode_netlist_blob(const std::string& blob, FlowResult* res) {
  store::BlobReader r(blob);
  uint8_t version = 0;
  if (!r.u8(&version) || version != kNetlistBlobVersion) return false;
  // Decode into locals first: a torn blob must leave `*res` untouched so
  // the caller can fall back to running the stage.
  circuit::Netlist nl;
  std::vector<StageReport> reports;
  if (!circuit::decode_netlist(&r, &nl) ||
      !decode_stage_reports(&r, 1, &reports) || !r.at_end()) {
    return false;
  }
  res->netlist = std::move(nl);
  for (StageReport& sr : reports) res->stages.push_back(std::move(sr));
  return true;
}

// --- placement -------------------------------------------------------------

std::string place_key(const FlowOptions& opt, uint64_t lib_fp) {
  // Everything stages gen/synth/place(+CTS) read from the options. A
  // custom netlist replaces the bench identity with its structural hash.
  const std::string source =
      opt.custom_netlist != nullptr
          ? util::strf("\"netlist\":\"%s\"",
                       store::key_hex(check::netlist_hash(*opt.custom_netlist))
                           .c_str())
          : util::strf("\"bench\":\"%s\"", gen::to_string(opt.bench));
  return util::strf(
      "{\"artifact\":\"place\",%s,\"node\":\"%s\",\"style\":\"%s\","
      "\"scale_shift\":%d,\"seed\":\"%llu\",\"clock_ns\":%.17g,"
      "\"target_util\":%.17g,\"tmi_wlm\":%d,\"resistivity_scale\":%.17g,"
      "\"build_cts\":%d,\"lib\":\"%s\"}",
      source.c_str(), tech::to_string(opt.node), tech::to_string(opt.style),
      opt.scale_shift, static_cast<unsigned long long>(opt.seed), opt.clock_ns,
      opt.target_util, opt.tmi_wlm ? 1 : 0, opt.resistivity_scale,
      opt.build_cts ? 1 : 0, store::key_hex(lib_fp).c_str());
}

std::string encode_place_blob(const FlowResult& res) {
  store::BlobWriter w;
  w.u8(kPlaceBlobVersion);
  circuit::encode_netlist(res.netlist, &w);
  w.f64(res.die.core.xlo);
  w.f64(res.die.core.ylo);
  w.f64(res.die.core.xhi);
  w.f64(res.die.core.yhi);
  w.f64(res.die.row_height_um);
  w.i32(res.die.num_rows);
  encode_stage_reports(res, 3, &w);
  return w.take();
}

bool decode_place_blob(const std::string& blob, FlowResult* res) {
  store::BlobReader r(blob);
  uint8_t version = 0;
  if (!r.u8(&version) || version != kPlaceBlobVersion) return false;
  circuit::Netlist nl;
  place::Die die;
  std::vector<StageReport> reports;
  if (!circuit::decode_netlist(&r, &nl)) return false;
  if (!r.f64(&die.core.xlo) || !r.f64(&die.core.ylo) ||
      !r.f64(&die.core.xhi) || !r.f64(&die.core.yhi) ||
      !r.f64(&die.row_height_um) || !r.i32(&die.num_rows)) {
    return false;
  }
  if (!decode_stage_reports(&r, 3, &reports) || !r.at_end()) return false;
  res->netlist = std::move(nl);
  res->die = die;
  for (StageReport& sr : reports) res->stages.push_back(std::move(sr));
  return true;
}

}  // namespace m3d::flow::artifacts
