#include "check/golden.hpp"

#include <cmath>
#include <set>
#include <string>

#include "util/strf.hpp"

namespace m3d::check {
namespace {

const char* kC = "golden";

bool is_exact_field(const std::string& field) {
  // Integer counts: any drift is a real netlist change, never FP noise.
  return field == "cells" || field == "buffers";
}

bool within(const Band& b, double got, double want, double scale) {
  return std::abs(got - want) <=
         scale * (b.abs + b.rel * std::max(std::abs(got), std::abs(want)));
}

void compare_number(CheckResult* res, const GoldenPolicy& policy,
                    const std::string& field, double got, double want) {
  if (is_exact_field(field)) {
    if (got != want) {
      res->add(kC, "exact-field",
               util::strf("%s: %.17g != golden %.17g (exact field)",
                          field.c_str(), got, want));
    }
    return;
  }
  const Band band = band_for_field(policy, field);
  if (!within(band, got, want, policy.scale)) {
    res->add(kC, "out-of-band",
             util::strf("%s: %.6g vs golden %.6g exceeds band "
                        "(rel %.3g, abs %.3g)",
                        field.c_str(), got, want, band.rel * policy.scale,
                        band.abs * policy.scale));
  }
}

void compare_value(CheckResult* res, const GoldenPolicy& policy,
                   const std::string& field, const util::json::Value& got,
                   const util::json::Value& want) {
  using Type = util::json::Value::Type;
  if (got.type() != want.type()) {
    res->add(kC, "type-mismatch",
             util::strf("%s: report/golden field types differ", field.c_str()));
    return;
  }
  switch (want.type()) {
    case Type::kBool:
      if (got.as_bool() != want.as_bool()) {
        res->add(kC, "bool-flip",
                 util::strf("%s: %s != golden %s", field.c_str(),
                            got.as_bool() ? "true" : "false",
                            want.as_bool() ? "true" : "false"));
      }
      break;
    case Type::kNumber:
      compare_number(res, policy, field, got.as_number(), want.as_number());
      break;
    case Type::kString:
      if (got.as_string() != want.as_string()) {
        res->add(kC, "string-mismatch",
                 util::strf("%s: \"%s\" != golden \"%s\"", field.c_str(),
                            got.as_string().c_str(),
                            want.as_string().c_str()));
      }
      break;
    default:
      break;  // arrays/objects handled by the caller's field walk
  }
}

}  // namespace

Band band_for_field(const GoldenPolicy& policy, const std::string& field) {
  if (is_exact_field(field)) return Band{0.0, 0.0};
  if (field == "wns_ps") return policy.wns_band;
  if (field == "utilization") return policy.utilization_band;
  return policy.default_band;
}

CheckResult compare_to_golden(const util::json::Value& report,
                              const util::json::Value& golden,
                              const GoldenPolicy& policy) {
  CheckResult res;
  if (!report.is_object() || !golden.is_object()) {
    res.add(kC, "not-a-report", "report or golden is not a JSON object");
    return res;
  }
  // Identity fields must match exactly.
  for (const char* field : {"schema", "bench", "style", "seed"}) {
    const util::json::Value* want = golden.find(field);
    const util::json::Value* got = report.find(field);
    if (want == nullptr) continue;  // older golden without the field
    if (got == nullptr) {
      res.add(kC, "missing-field",
              util::strf("report lacks identity field %s", field));
      continue;
    }
    compare_value(&res, policy, field, *got, *want);
  }
  if (const util::json::Value* want = golden.find("clock_ns")) {
    if (const util::json::Value* got = report.find("clock_ns")) {
      compare_number(&res, policy, "clock_ns", got->as_number(),
                     want->as_number());
    } else {
      res.add(kC, "missing-field", "report lacks clock_ns");
    }
  }

  const util::json::Value* want_metrics = golden.find("metrics");
  const util::json::Value* got_metrics = report.find("metrics");
  if (want_metrics == nullptr || !want_metrics->is_object()) {
    res.add(kC, "bad-golden", "golden has no metrics object");
    return res;
  }
  if (got_metrics == nullptr || !got_metrics->is_object()) {
    res.add(kC, "missing-field", "report has no metrics object");
    return res;
  }
  std::set<std::string> golden_fields;
  for (const auto& [field, want] : want_metrics->members()) {
    golden_fields.insert(field);
    const util::json::Value* got = got_metrics->find(field);
    if (got == nullptr) {
      res.add(kC, "missing-field",
              util::strf("report metrics lack %s", field.c_str()));
      continue;
    }
    compare_value(&res, policy, field, *got, want);
  }
  // New metric fields are fine for forward evolution but worth a warning:
  // regenerate the golden so the new field is under regression too.
  for (const auto& [field, got] : got_metrics->members()) {
    (void)got;
    if (golden_fields.count(field) == 0) {
      res.add(kC, "unsnapshotted-field",
              util::strf("metrics field %s absent from golden — regenerate",
                         field.c_str()),
              Severity::kWarning);
    }
  }
  return res;
}

}  // namespace m3d::check
