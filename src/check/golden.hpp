// Golden-report regression comparison: diff a canonical run report (see
// report::to_canonical_json) against a stored snapshot under per-field
// tolerance bands, returning check::Violation records for every field that
// drifted out of band. The bands encode which drift is acceptable for a
// perf PR (small FP reassociation noise) versus which must fail tier-1
// loudly (paper metrics moving, cell counts changing, timing flipping).
#pragma once

#include <string>

#include "check/check.hpp"
#include "util/json.hpp"

namespace m3d::check {

/// One tolerance band: |got - want| <= abs + rel * max(|got|, |want|).
struct Band {
  double rel = 0.0;
  double abs = 0.0;
};

struct GoldenPolicy {
  /// Band for metric fields without an explicit override (paper percentages
  /// are quoted to ~1%, so 2% relative keeps the headline numbers honest).
  Band default_band{0.02, 1e-9};
  /// wns can legitimately sit near zero at closure; give it an absolute
  /// floor in ps on top of the relative band.
  Band wns_band{0.05, 10.0};
  Band utilization_band{0.0, 0.02};
  /// Multiplies every band (golden tests can tighten or loosen globally).
  double scale = 1.0;
};

/// The band the policy assigns to a metrics field (exact fields — integer
/// counts — return {0, 0}).
Band band_for_field(const GoldenPolicy& policy, const std::string& field);

/// Compares a canonical report against its golden snapshot. Identity fields
/// (schema/bench/style), booleans and integer counts must match exactly;
/// numeric metrics may drift within their band. Fields present in the
/// golden but missing from the report (or vice versa) are violations, so
/// schema drift is loud too. Stage timings/counters are not compared — the
/// metrics block is the regression surface.
CheckResult compare_to_golden(const util::json::Value& report,
                              const util::json::Value& golden,
                              const GoldenPolicy& policy = {});

}  // namespace m3d::check
