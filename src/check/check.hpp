// Flow invariant checkers: structural sign-off oracles for every stage
// artifact the flow produces. Each checker inspects one artifact (netlist,
// placement, routing, timing, power, library) and returns structured
// Violation records instead of asserting, so callers can aggregate them
// into the metrics registry ("check.violations") and the JSON run report,
// and the fuzz driver can push thousands of random circuits through the
// flow with the full battery enabled.
//
// The checkers are pure observers: they never mutate the artifact, and a
// clean run returns an empty CheckResult. `run_flow` invokes them behind
// `FlowOptions::check_level` (see Level below).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "liberty/library.hpp"
#include "place/place.hpp"
#include "power/power.hpp"
#include "route/route.hpp"
#include "sta/sta.hpp"
#include "tech/tech.hpp"

namespace m3d::check {

/// How much checking run_flow performs after sign-off:
///  kNone  — no checks (perf-sensitive sweeps);
///  kBasic — O(V+E) artifact checks: netlist, timing, power;
///  kFull  — kBasic + placement legality, routing DRC, library sanity.
enum class Level { kNone = 0, kBasic = 1, kFull = 2 };

const char* to_string(Level level);

enum class Severity { kWarning, kError };

/// One invariant violation. `checker` names the checker that found it
/// ("netlist", "placement", ...), `code` is a stable machine-readable slug
/// ("overlap", "undriven-net", ...), `message` carries the object names and
/// values a human needs to reproduce and fix it.
struct Violation {
  std::string checker;
  std::string code;
  std::string message;
  Severity severity = Severity::kError;
};

struct CheckResult {
  std::vector<Violation> violations;

  bool ok() const { return errors() == 0; }
  int errors() const;
  int warnings() const;
  /// Violations found by one checker (for per-checker metrics).
  int count_for(const std::string& checker) const;

  void add(std::string checker, std::string code, std::string message,
           Severity severity = Severity::kError);
  void merge(CheckResult other);
  /// "netlist/undriven-net: ..." lines, at most `max_lines` (0: all).
  std::string summary(size_t max_lines = 10) const;
};

/// Netlist well-formedness: every net/pin reference in range and
/// cross-linked, exactly one driver per net (or a primary input), no
/// dangling sink pins, no undriven nets with sinks, and combinational
/// logic acyclic (every live gate reachable in topo order).
CheckResult check_netlist(const circuit::Netlist& nl);

/// Placement legality: every live cell bound, placed, centered on a row,
/// fully inside the core, and non-overlapping with its row neighbours.
/// Works for 2D and folded T-MI dies alike — only row_height_um differs.
CheckResult check_placement(const circuit::Netlist& nl, const place::Die& die);

/// Routing DRC: per-edge usage within capacity whenever the result claims
/// `routed`, overflow/congestion bookkeeping consistent with the stored
/// usage grids, every non-clock net with sinks fully connected
/// (per-sink path entries present), per-net wirelengths and via counts
/// summing to the totals, and the via model consistent with the style
/// (a 2D stack must not report an MIV cut).
CheckResult check_routing(const circuit::Netlist& nl,
                          const route::RouteResult& routes,
                          const tech::Tech& tech);

/// STA graph consistency: result vectors sized to the netlist, arrivals /
/// slews / loads finite and non-negative, and — at timing closure — every
/// arrival no later than its required time and no negative instance slack.
CheckResult check_timing(const circuit::Netlist& nl,
                         const sta::TimingResult& timing);

/// Power sanity: every component non-negative, total = internal +
/// switching + leakage, switching = wire + pin, and per-net activities
/// within [0, 2] toggles per cycle.
CheckResult check_power(const circuit::Netlist& nl,
                        const power::PowerResult& power);

/// Library sanity: non-empty monotone-axis NLDM tables, output slew and
/// delay monotone (non-decreasing) in load along every table row, positive
/// pin caps and areas, non-negative leakage.
CheckResult check_library(const liberty::Library& lib);

/// Deterministic structural hash of a netlist (names, functions, drives,
/// connectivity, ports, clock). Placement and binding pointers excluded:
/// two netlists with the same structure hash equal across processes and
/// platforms. Oracle for generator-determinism tests.
uint64_t netlist_hash(const circuit::Netlist& nl);

/// Deterministic hash of the netlist's physical state: netlist_hash plus
/// every live instance's placed flag and exact position bit pattern (and
/// the port pad positions). Two placements hash equal iff they are
/// bit-identical — the oracle the store-differential fuzz harness uses to
/// prove a store-restored placement matches the cold one.
uint64_t placement_hash(const circuit::Netlist& nl);

}  // namespace m3d::check
