#include "check/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "util/rng.hpp"
#include "util/strf.hpp"

namespace m3d::check {
namespace {

constexpr double kPosEps = 1e-6;     // um: row alignment / overlap slack
constexpr double kSumRelTol = 1e-9;  // relative tolerance for FP re-sums
constexpr double kTimeEps = 1e-6;    // ps
// Required times start at kInf (sta.cpp) and stay there for nets with no
// timing endpoint downstream; anything above this is "unconstrained".
constexpr double kUnconstrained = std::numeric_limits<double>::max() / 8;

bool close_rel(double a, double b, double rel, double abs_tol) {
  return std::abs(a - b) <= abs_tol + rel * std::max(std::abs(a), std::abs(b));
}

void mix(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9e3779b97f4a7c15ULL + (*h << 6) + (*h >> 2);
  uint64_t sm = *h;
  *h = util::splitmix64(sm);
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kNone: return "none";
    case Level::kBasic: return "basic";
    case Level::kFull: return "full";
  }
  return "?";
}

int CheckResult::errors() const {
  int n = 0;
  for (const auto& v : violations) n += (v.severity == Severity::kError);
  return n;
}

int CheckResult::warnings() const {
  return static_cast<int>(violations.size()) - errors();
}

int CheckResult::count_for(const std::string& checker) const {
  int n = 0;
  for (const auto& v : violations) n += (v.checker == checker);
  return n;
}

void CheckResult::add(std::string checker, std::string code,
                      std::string message, Severity severity) {
  violations.push_back(Violation{std::move(checker), std::move(code),
                                 std::move(message), severity});
}

void CheckResult::merge(CheckResult other) {
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

std::string CheckResult::summary(size_t max_lines) const {
  std::string out;
  size_t shown = 0;
  for (const auto& v : violations) {
    if (max_lines != 0 && shown == max_lines) {
      out += util::strf("... and %zu more\n", violations.size() - shown);
      break;
    }
    out += util::strf("%s/%s: %s\n", v.checker.c_str(), v.code.c_str(),
                      v.message.c_str());
    ++shown;
  }
  return out;
}

CheckResult check_netlist(const circuit::Netlist& nl) {
  CheckResult res;
  const char* kC = "netlist";
  const int num_nets = nl.num_nets();
  const int num_inst = nl.num_instances();
  auto net_ok = [&](circuit::NetId n) { return n >= 0 && n < num_nets; };
  auto inst_ok = [&](circuit::InstId i) { return i >= 0 && i < num_inst; };

  // Net side: driver/sink references in range, live, and cross-linked.
  for (circuit::NetId n = 0; n < num_nets; ++n) {
    const circuit::Net& net = nl.net(n);
    if (net.driver.inst != circuit::kInvalid) {
      if (!inst_ok(net.driver.inst)) {
        res.add(kC, "bad-driver-ref",
                util::strf("net %s: driver instance id %d out of range",
                           net.name.c_str(), net.driver.inst));
        continue;
      }
      const circuit::Instance& d = nl.inst(net.driver.inst);
      if (d.dead) {
        res.add(kC, "dead-driver",
                util::strf("net %s driven by removed instance %s",
                           net.name.c_str(), d.name.c_str()));
      } else if (net.driver.pin < 0 ||
                 net.driver.pin >= static_cast<int>(d.out_nets.size()) ||
                 d.out_nets[static_cast<size_t>(net.driver.pin)] != n) {
        res.add(kC, "driver-crosslink",
                util::strf("net %s: driver %s pin %d does not drive it back",
                           net.name.c_str(), d.name.c_str(), net.driver.pin));
      }
    } else if (!net.sinks.empty() && !net.is_primary_input && !net.is_clock) {
      res.add(kC, "undriven-net",
              util::strf("net %s has %d sink(s) but no driver and is not a "
                         "primary input",
                         net.name.c_str(), net.fanout()));
    }
    for (const circuit::PinRef& s : net.sinks) {
      if (!inst_ok(s.inst)) {
        res.add(kC, "bad-sink-ref",
                util::strf("net %s: sink instance id %d out of range",
                           net.name.c_str(), s.inst));
        continue;
      }
      const circuit::Instance& si = nl.inst(s.inst);
      if (si.dead) {
        res.add(kC, "dead-sink",
                util::strf("net %s fans out to removed instance %s",
                           net.name.c_str(), si.name.c_str()));
      } else if (s.pin < 0 || s.pin >= static_cast<int>(si.in_nets.size()) ||
                 si.in_nets[static_cast<size_t>(s.pin)] != n) {
        res.add(kC, "sink-crosslink",
                util::strf("net %s: sink %s pin %d does not point back",
                           net.name.c_str(), si.name.c_str(), s.pin));
      }
    }
  }

  // Instance side: every live pin wired to a valid net, exactly one driver
  // per net (two instances claiming the same net is a driver conflict).
  std::vector<circuit::InstId> driver_of(static_cast<size_t>(num_nets),
                                         circuit::kInvalid);
  int live = 0;
  for (circuit::InstId i = 0; i < num_inst; ++i) {
    const circuit::Instance& inst = nl.inst(i);
    if (inst.dead) continue;
    ++live;
    for (size_t p = 0; p < inst.in_nets.size(); ++p) {
      if (!net_ok(inst.in_nets[p])) {
        res.add(kC, "dangling-input",
                util::strf("instance %s input pin %zu wired to invalid net %d",
                           inst.name.c_str(), p, inst.in_nets[p]));
      }
    }
    for (size_t o = 0; o < inst.out_nets.size(); ++o) {
      const circuit::NetId out = inst.out_nets[o];
      if (!net_ok(out)) {
        res.add(kC, "dangling-output",
                util::strf("instance %s output pin %zu wired to invalid net %d",
                           inst.name.c_str(), o, out));
        continue;
      }
      circuit::InstId& owner = driver_of[static_cast<size_t>(out)];
      if (owner != circuit::kInvalid && owner != i) {
        res.add(kC, "multiple-drivers",
                util::strf("net %s driven by both %s and %s",
                           nl.net(out).name.c_str(),
                           nl.inst(owner).name.c_str(), inst.name.c_str()));
      }
      owner = i;
      if (nl.net(out).driver.inst != i) {
        res.add(kC, "driver-mismatch",
                util::strf("instance %s claims net %s but the net records a "
                           "different driver",
                           inst.name.c_str(), nl.net(out).name.c_str()));
      }
    }
  }

  // Ports reference valid nets with matching direction flags.
  for (const circuit::Port& port : nl.ports()) {
    if (!net_ok(port.net)) {
      res.add(kC, "bad-port-net",
              util::strf("port %s wired to invalid net %d", port.name.c_str(),
                         port.net));
      continue;
    }
    const circuit::Net& net = nl.net(port.net);
    if (port.is_input && !net.is_primary_input && !net.is_clock) {
      res.add(kC, "port-direction",
              util::strf("input port %s on net %s not flagged primary input",
                         port.name.c_str(), net.name.c_str()));
    }
  }

  // Acyclicity: a combinational cycle leaves its members unreachable from
  // the topological sources, so the order comes back short.
  const size_t in_order = nl.topo_order().size();
  if (in_order != static_cast<size_t>(live)) {
    res.add(kC, "comb-cycle",
            util::strf("topological order covers %zu of %d live instances — "
                       "combinational cycle",
                       in_order, live));
  }
  return res;
}

CheckResult check_placement(const circuit::Netlist& nl,
                            const place::Die& die) {
  CheckResult res;
  const char* kC = "placement";
  struct RowCell {
    double xlo, xhi;
    circuit::InstId id;
  };
  std::map<int, std::vector<RowCell>> rows;

  for (circuit::InstId i = 0; i < nl.num_instances(); ++i) {
    const circuit::Instance& inst = nl.inst(i);
    if (inst.dead) continue;
    if (inst.libcell == nullptr) {
      res.add(kC, "unbound",
              util::strf("instance %s has no bound library cell",
                         inst.name.c_str()));
      continue;
    }
    if (!inst.placed) {
      res.add(kC, "unplaced",
              util::strf("instance %s not placed", inst.name.c_str()));
      continue;
    }
    const double w = inst.libcell->width_um;
    const double h = die.row_height_um;
    // Row alignment: the cell center must sit on a row center line.
    const int row = static_cast<int>(
        std::lround((inst.pos.y - die.core.ylo) / h - 0.5));
    if (row < 0 || row >= die.num_rows ||
        std::abs(inst.pos.y - die.row_y(row)) > kPosEps) {
      res.add(kC, "row-misaligned",
              util::strf("instance %s at y=%.6f not on a row center "
                         "(row pitch %.3f)",
                         inst.name.c_str(), inst.pos.y, h));
      continue;
    }
    const double xlo = inst.pos.x - w / 2;
    const double xhi = inst.pos.x + w / 2;
    if (xlo < die.core.xlo - kPosEps || xhi > die.core.xhi + kPosEps ||
        inst.pos.y - h / 2 < die.core.ylo - kPosEps ||
        inst.pos.y + h / 2 > die.core.yhi + kPosEps) {
      res.add(kC, "outside-core",
              util::strf("instance %s [%.4f, %.4f] x row %d escapes the core",
                         inst.name.c_str(), xlo, xhi, row));
    }
    // Overlap is the placer's contract over the cells it legalized.
    // Optimizer/CTS buffers are snapped to the row grid (row alignment and
    // containment hold, checked above) but not gap-legalized — they are
    // area-negligible, and a full incremental legalizer is future work.
    if (!inst.from_optimizer) rows[row].push_back(RowCell{xlo, xhi, i});
  }

  for (auto& [row, cells] : rows) {
    std::sort(cells.begin(), cells.end(),
              [](const RowCell& a, const RowCell& b) { return a.xlo < b.xlo; });
    for (size_t k = 0; k + 1 < cells.size(); ++k) {
      const double over = cells[k].xhi - cells[k + 1].xlo;
      if (over > kPosEps) {
        res.add(kC, "overlap",
                util::strf("row %d: %s and %s overlap by %.6f um", row,
                           nl.inst(cells[k].id).name.c_str(),
                           nl.inst(cells[k + 1].id).name.c_str(), over));
      }
    }
  }
  return res;
}

CheckResult check_routing(const circuit::Netlist& nl,
                          const route::RouteResult& routes,
                          const tech::Tech& tech) {
  CheckResult res;
  const char* kC = "routing";
  if (routes.nets.size() != static_cast<size_t>(nl.num_nets())) {
    res.add(kC, "net-table-size",
            util::strf("route table has %zu entries for %d nets",
                       routes.nets.size(), nl.num_nets()));
    return res;  // indices below would be meaningless
  }

  // Connectivity: the router owns every non-clock net with sinks, and its
  // per-sink path table must be parallel to the net's sink list.
  for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
    const circuit::Net& net = nl.net(n);
    const route::NetRoute& nr = routes.nets[static_cast<size_t>(n)];
    if (net.is_clock || net.sinks.empty()) {
      // Tolerance band, not exact-zero: sub-nanometer wirelength is
      // accumulation noise, anything above it is a real phantom route.
      if (std::abs(nr.total_wl()) > 1e-6) {
        res.add(kC, "phantom-route",
                util::strf("unrouted-class net %s carries %.3f um of wire",
                           net.name.c_str(), nr.total_wl()));
      }
      continue;
    }
    if (nr.sink_path_wl.size() != net.sinks.size()) {
      res.add(kC, "disconnected-net",
              util::strf("net %s: %zu per-sink paths for %zu sinks",
                         net.name.c_str(), nr.sink_path_wl.size(),
                         net.sinks.size()));
    }
    for (int l = 0; l < route::kNumLevels; ++l) {
      if (nr.wl_um[static_cast<size_t>(l)] < 0.0) {
        res.add(kC, "negative-wl",
                util::strf("net %s level %d wirelength %.3f < 0",
                           net.name.c_str(), l,
                           nr.wl_um[static_cast<size_t>(l)]));
      }
    }
    if (nr.vias < 0) {
      res.add(kC, "negative-vias",
              util::strf("net %s via count %d < 0", net.name.c_str(), nr.vias));
    }
  }

  // Totals must re-sum from the per-net table.
  std::array<double, route::kNumLevels> wl{};
  long vias = 0;
  for (const route::NetRoute& nr : routes.nets) {
    for (int l = 0; l < route::kNumLevels; ++l) {
      wl[static_cast<size_t>(l)] += nr.wl_um[static_cast<size_t>(l)];
    }
    vias += nr.vias;
  }
  for (int l = 0; l < route::kNumLevels; ++l) {
    if (!close_rel(wl[static_cast<size_t>(l)],
                   routes.wl_by_level[static_cast<size_t>(l)], kSumRelTol,
                   1e-6)) {
      res.add(kC, "wl-sum",
              util::strf("level %d wirelength %.6f != per-net sum %.6f", l,
                         routes.wl_by_level[static_cast<size_t>(l)],
                         wl[static_cast<size_t>(l)]));
    }
  }
  if (!close_rel(routes.total_wl_um, wl[0] + wl[1] + wl[2], kSumRelTol, 1e-6)) {
    res.add(kC, "total-wl-sum",
            util::strf("total wirelength %.6f != level sum %.6f",
                       routes.total_wl_um, wl[0] + wl[1] + wl[2]));
  }
  if (routes.total_vias != vias) {
    res.add(kC, "via-sum",
            util::strf("total vias %ld != per-net sum %ld", routes.total_vias,
                       vias));
  }

  // Capacity: recount overflow from the stored usage grids with the
  // router's own rule (usage > cap + 1e-9) and demand the bookkeeping
  // agrees; a result flagged `routed` must have no overflowing edge.
  int over = 0;
  double max_cong = 0.0;
  for (int l = 0; l < route::kNumLevels; ++l) {
    const auto count = [&](const std::vector<double>& usage, double cap,
                           char dir) {
      for (size_t e = 0; e < usage.size(); ++e) {
        max_cong = std::max(max_cong, usage[e] / std::max(cap, 1e-9));
        if (usage[e] < 0.0) {
          res.add(kC, "negative-usage",
                  util::strf("level %d %c-edge %zu usage %.4f < 0", l, dir, e,
                             usage[e]));
        }
        if (usage[e] > cap + 1e-9) {
          ++over;
          if (routes.routed) {
            res.add(kC, "capacity",
                    util::strf("level %d %c-edge %zu usage %.4f exceeds "
                               "capacity %.4f on a result claiming routed",
                               l, dir, e, usage[e], cap));
          }
        }
      }
    };
    count(routes.usage_h[static_cast<size_t>(l)],
          routes.cap_h[static_cast<size_t>(l)], 'h');
    count(routes.usage_v[static_cast<size_t>(l)],
          routes.cap_v[static_cast<size_t>(l)], 'v');
  }
  if (over != routes.overflow_edges) {
    res.add(kC, "overflow-count",
            util::strf("stored overflow_edges %d != recount %d",
                       routes.overflow_edges, over));
  }
  if (routes.routed != (over == 0)) {
    res.add(kC, "routed-flag",
            util::strf("routed=%d inconsistent with %d overflowing edges",
                       routes.routed ? 1 : 0, over));
  }
  if (!close_rel(routes.max_congestion, max_cong, 1e-9, 1e-9)) {
    res.add(kC, "max-congestion",
            util::strf("stored max congestion %.6f != recomputed %.6f",
                       routes.max_congestion, max_cong),
            Severity::kWarning);
  }

  // Via model vs style: only 3D stacks have a monolithic inter-tier cut.
  const int miv_cut = tech.miv_cut_index();
  if (tech.is_3d() != (miv_cut >= 0)) {
    res.add(kC, "miv-cut",
            util::strf("style %s reports MIV cut index %d",
                       tech::to_string(tech.style()), miv_cut));
  }
  return res;
}

CheckResult check_timing(const circuit::Netlist& nl,
                         const sta::TimingResult& timing) {
  CheckResult res;
  const char* kC = "timing";
  const size_t num_nets = static_cast<size_t>(nl.num_nets());
  if (timing.arrival_ps.size() != num_nets ||
      timing.slew_ps.size() != num_nets ||
      timing.required_ps.size() != num_nets ||
      timing.load_ff.size() != num_nets) {
    res.add(kC, "vector-size",
            util::strf("timing vectors not sized to %zu nets", num_nets));
    return res;
  }
  if (timing.inst_slack_ps.size() !=
      static_cast<size_t>(nl.num_instances())) {
    res.add(kC, "vector-size",
            util::strf("instance slack vector not sized to %d instances",
                       nl.num_instances()));
    return res;
  }
  for (size_t n = 0; n < num_nets; ++n) {
    const auto bad = [&](double v) { return !std::isfinite(v) || v < 0.0; };
    if (bad(timing.arrival_ps[n]) || bad(timing.slew_ps[n]) ||
        bad(timing.load_ff[n])) {
      res.add(kC, "bad-node-value",
              util::strf("net %s: arrival=%.3g slew=%.3g load=%.3g",
                         nl.net(static_cast<circuit::NetId>(n)).name.c_str(),
                         timing.arrival_ps[n], timing.slew_ps[n],
                         timing.load_ff[n]));
    }
    // At closure every constrained node meets its required time.
    if (timing.met() && timing.required_ps[n] < kUnconstrained &&
        timing.arrival_ps[n] > timing.required_ps[n] + kTimeEps) {
      res.add(kC, "arrival-after-required",
              util::strf("net %s: arrival %.3f ps > required %.3f ps on a "
                         "design claiming timing met",
                         nl.net(static_cast<circuit::NetId>(n)).name.c_str(),
                         timing.arrival_ps[n], timing.required_ps[n]));
    }
  }
  if (timing.met()) {
    for (int i = 0; i < nl.num_instances(); ++i) {
      if (nl.inst(i).dead) continue;
      const double slack = timing.inst_slack_ps[static_cast<size_t>(i)];
      if (slack < -kTimeEps && slack < kUnconstrained) {
        res.add(kC, "negative-slack",
                util::strf("instance %s slack %.3f ps < 0 at closure",
                           nl.inst(i).name.c_str(), slack));
      }
    }
  }
  if (!std::isfinite(timing.critical_path_ps) ||
      timing.critical_path_ps < 0.0) {
    res.add(kC, "critical-path",
            util::strf("critical path %.3f ps invalid",
                       timing.critical_path_ps));
  }
  return res;
}

CheckResult check_power(const circuit::Netlist& nl,
                        const power::PowerResult& power) {
  CheckResult res;
  const char* kC = "power";
  const auto nonneg = [&](double v, const char* what) {
    if (!std::isfinite(v) || v < -1e-9) {
      res.add(kC, "negative-component",
              util::strf("%s = %.6g uW", what, v));
    }
  };
  nonneg(power.total_uw, "total");
  nonneg(power.cell_internal_uw, "cell internal");
  nonneg(power.net_switching_uw, "net switching");
  nonneg(power.leakage_uw, "leakage");
  nonneg(power.wire_uw, "wire switching");
  nonneg(power.pin_uw, "pin switching");
  nonneg(power.wire_cap_pf, "wire cap");
  nonneg(power.pin_cap_pf, "pin cap");
  const double sum =
      power.cell_internal_uw + power.net_switching_uw + power.leakage_uw;
  if (!close_rel(power.total_uw, sum, 1e-9, 1e-9)) {
    res.add(kC, "total-mismatch",
            util::strf("total %.9f uW != internal+switching+leakage %.9f uW",
                       power.total_uw, sum));
  }
  const double split = power.wire_uw + power.pin_uw;
  if (!close_rel(power.net_switching_uw, split, 1e-9, 1e-9)) {
    res.add(kC, "switching-split",
            util::strf("net switching %.9f uW != wire+pin %.9f uW",
                       power.net_switching_uw, split));
  }
  if (power.net_activity.size() == static_cast<size_t>(nl.num_nets())) {
    for (size_t n = 0; n < power.net_activity.size(); ++n) {
      const double a = power.net_activity[n];
      if (!std::isfinite(a) || a < 0.0 || a > 2.0 + 1e-9) {
        res.add(kC, "activity-range",
                util::strf("net %s activity %.4f outside [0, 2]",
                           nl.net(static_cast<circuit::NetId>(n)).name.c_str(),
                           a));
      }
    }
  } else if (!power.net_activity.empty()) {
    res.add(kC, "activity-size",
            util::strf("activity vector has %zu entries for %d nets",
                       power.net_activity.size(), nl.num_nets()));
  }
  return res;
}

CheckResult check_library(const liberty::Library& lib) {
  CheckResult res;
  const char* kC = "library";
  const auto check_axes = [&](const liberty::NldmTable& t,
                              const std::string& where) {
    if (t.empty() || t.slew_ps.empty() || t.load_ff.empty() ||
        t.value.size() != t.slew_ps.size() * t.load_ff.size()) {
      res.add(kC, "bad-table", util::strf("%s: malformed table", where.c_str()));
      return false;
    }
    for (size_t i = 0; i + 1 < t.slew_ps.size(); ++i) {
      if (t.slew_ps[i + 1] <= t.slew_ps[i]) {
        res.add(kC, "axis-order",
                util::strf("%s: slew axis not increasing", where.c_str()));
        return false;
      }
    }
    for (size_t i = 0; i + 1 < t.load_ff.size(); ++i) {
      if (t.load_ff[i + 1] <= t.load_ff[i]) {
        res.add(kC, "axis-order",
                util::strf("%s: load axis not increasing", where.c_str()));
        return false;
      }
    }
    return true;
  };
  // Monotone in load along each slew row. Characterized tables carry solver
  // noise, so only decreases beyond 0.2% (or 1e-6 absolute) are flagged.
  const auto check_monotone = [&](const liberty::NldmTable& t,
                                  const std::string& where) {
    for (size_t si = 0; si < t.slew_ps.size(); ++si) {
      for (size_t li = 0; li + 1 < t.load_ff.size(); ++li) {
        const double a = t.cell(si, li);
        const double b = t.cell(si, li + 1);
        if (b < a - std::max(1e-6, 0.002 * std::abs(a))) {
          res.add(kC, "non-monotone-load",
                  util::strf("%s: row slew=%.1fps drops %.4f -> %.4f with "
                             "rising load",
                             where.c_str(), t.slew_ps[si], a, b));
        }
      }
    }
  };
  for (const liberty::LibCell& cell : lib.cells()) {
    const liberty::LibCell* c = &cell;
    if (c->area_um2() <= 0.0) {
      res.add(kC, "bad-area",
              util::strf("cell %s area %.4f <= 0", c->name.c_str(),
                         c->area_um2()));
    }
    if (c->leakage_uw < 0.0) {
      res.add(kC, "negative-leakage",
              util::strf("cell %s leakage %.6f < 0", c->name.c_str(),
                         c->leakage_uw));
    }
    for (const auto& [pin, cap] : c->pin_cap_ff) {
      if (cap <= 0.0) {
        res.add(kC, "bad-pin-cap",
                util::strf("cell %s pin %s cap %.4f <= 0", c->name.c_str(),
                           pin.c_str(), cap));
      }
    }
    if (c->arcs.empty()) {
      res.add(kC, "no-arcs",
              util::strf("cell %s has no timing arcs", c->name.c_str()));
    }
    for (const liberty::TimingArc& arc : c->arcs) {
      for (int e = 0; e < 2; ++e) {
        const std::string where = util::strf(
            "%s %s->%s edge %d", c->name.c_str(), arc.from.c_str(),
            arc.to.c_str(), e);
        if (check_axes(arc.delay[e], where + " delay")) {
          check_monotone(arc.delay[e], where + " delay");
        }
        if (check_axes(arc.out_slew[e], where + " slew")) {
          check_monotone(arc.out_slew[e], where + " slew");
        }
        check_axes(arc.energy[e], where + " energy");
      }
    }
  }
  return res;
}

uint64_t netlist_hash(const circuit::Netlist& nl) {
  uint64_t h = util::hash64(nl.name);
  mix(&h, static_cast<uint64_t>(nl.num_instances()));
  mix(&h, static_cast<uint64_t>(nl.num_nets()));
  mix(&h, static_cast<uint64_t>(nl.clock_net() + 1));
  for (int i = 0; i < nl.num_instances(); ++i) {
    const circuit::Instance& inst = nl.inst(i);
    mix(&h, util::hash64(inst.name));
    mix(&h, static_cast<uint64_t>(inst.func));
    mix(&h, static_cast<uint64_t>(inst.drive));
    mix(&h, inst.dead ? 1 : 0);
    for (circuit::NetId n : inst.in_nets) mix(&h, static_cast<uint64_t>(n + 1));
    for (circuit::NetId n : inst.out_nets) {
      mix(&h, static_cast<uint64_t>(n + 1));
    }
  }
  for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
    const circuit::Net& net = nl.net(n);
    mix(&h, util::hash64(net.name));
    mix(&h, static_cast<uint64_t>(net.driver.inst + 1));
    mix(&h, static_cast<uint64_t>(net.driver.pin + 1));
    mix(&h, (net.is_clock ? 1 : 0) | (net.is_primary_input ? 2 : 0) |
                (net.is_primary_output ? 4 : 0));
    for (const circuit::PinRef& s : net.sinks) {
      mix(&h, static_cast<uint64_t>(s.inst + 1));
      mix(&h, static_cast<uint64_t>(s.pin + 1));
    }
  }
  for (const circuit::Port& p : nl.ports()) {
    mix(&h, util::hash64(p.name));
    mix(&h, static_cast<uint64_t>(p.net + 1));
    mix(&h, p.is_input ? 1 : 0);
  }
  return h;
}

uint64_t placement_hash(const circuit::Netlist& nl) {
  // Exact bit patterns (memcpy, not value comparison): the hash must
  // distinguish placements that differ by one ulp, because downstream
  // extraction and timing would.
  const auto bits = [](double v) {
    uint64_t u = 0;
    std::memcpy(&u, &v, sizeof u);
    return u;
  };
  uint64_t h = netlist_hash(nl);
  for (int i = 0; i < nl.num_instances(); ++i) {
    const circuit::Instance& inst = nl.inst(i);
    if (inst.dead) continue;
    mix(&h, inst.placed ? 1 : 0);
    mix(&h, bits(inst.pos.x));
    mix(&h, bits(inst.pos.y));
  }
  for (const circuit::Port& p : nl.ports()) {
    mix(&h, bits(p.pos.x));
    mix(&h, bits(p.pos.y));
  }
  return h;
}

}  // namespace m3d::check
