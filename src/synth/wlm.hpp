// Wire load models (paper Section 3.4, Fig 6): statistical fanout ->
// wirelength tables that guide synthesis before any layout exists. T-MI
// designs get their own WLMs extracted from preliminary layouts, reflecting
// their ~20-30% shorter wires — which changes what the synthesizer does
// (supplement S7).
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "extract/parasitics.hpp"
#include "tech/tech.hpp"

namespace m3d::synth {

struct Wlm {
  /// fanout -> estimated wirelength (um); index 0 unused, values clamp at
  /// the last entry.
  std::vector<double> fanout_wl_um;
  double unit_r_kohm_um = 0.0;
  double unit_c_ff_um = 0.0;

  double wl_um(int fanout) const;
  /// Uniform scale (used to derive a T-MI WLM from a 2D WLM).
  Wlm scaled(double factor) const;
};

/// Statistical WLM for a design expected to occupy `core_area_um2`.
Wlm make_statistical_wlm(double core_area_um2, const tech::Tech& tech);

/// Extracts a WLM from a placed design (preliminary layout), bucketing
/// per-net HPWL by fanout — how the paper builds its T-MI WLMs.
Wlm extract_wlm(const circuit::Netlist& nl, const tech::Tech& tech,
                int max_fanout = 20);

/// Net parasitics from a WLM (what synthesis-time STA consumes).
extract::Parasitics wlm_parasitics(const circuit::Netlist& nl, const Wlm& wlm);

}  // namespace m3d::synth
