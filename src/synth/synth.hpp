// "Synthesis": library binding, fanout buffering, and WLM-driven gate
// sizing toward the target clock — the Design Compiler stage of the flow
// (paper Fig 1). Because the WLM differs between 2D and T-MI, the
// synthesized netlists differ too (paper Section 3.4).
#pragma once

#include "circuit/netlist.hpp"
#include "liberty/library.hpp"
#include "synth/wlm.hpp"

namespace m3d::synth {

struct SynthOptions {
  double clock_ns = 1.0;
  int max_fanout = 12;
  int sizing_rounds = 6;
};

struct SynthReport {
  int cells = 0;
  int nets = 0;
  int buffers_added = 0;
  int upsized = 0;
  double cell_area_um2 = 0.0;
  double average_fanout = 0.0;
  double wns_ps = 0.0;  // WLM-estimated
};

SynthReport synthesize(circuit::Netlist* nl, const liberty::Library& lib,
                       const Wlm& wlm, const SynthOptions& opt);

}  // namespace m3d::synth
