#include "synth/wlm.hpp"

#include <algorithm>
#include <cmath>

#include "extract/extract.hpp"
#include "geom/rect.hpp"

namespace m3d::synth {

double Wlm::wl_um(int fanout) const {
  if (fanout_wl_um.size() < 2) return 0.0;
  const size_t idx = std::clamp<size_t>(static_cast<size_t>(fanout), 1,
                                        fanout_wl_um.size() - 1);
  return fanout_wl_um[idx];
}

Wlm Wlm::scaled(double factor) const {
  Wlm out = *this;
  for (auto& w : out.fanout_wl_um) w *= factor;
  return out;
}

Wlm make_statistical_wlm(double core_area_um2, const tech::Tech& tech) {
  Wlm wlm;
  const double side = std::sqrt(std::max(core_area_um2, 1.0));
  wlm.fanout_wl_um.resize(21, 0.0);
  for (int f = 1; f <= 20; ++f) {
    // Fig 6 shape: near-linear growth with fanout, scaled by design size.
    wlm.fanout_wl_um[static_cast<size_t>(f)] = side * (0.08 + 0.045 * f);
  }
  wlm.unit_r_kohm_um = extract::unit_r_kohm_um(tech, route::kLocal);
  wlm.unit_c_ff_um = extract::unit_c_ff_um(tech, route::kLocal);
  return wlm;
}

Wlm extract_wlm(const circuit::Netlist& nl, const tech::Tech& tech,
                int max_fanout) {
  std::vector<double> sum(static_cast<size_t>(max_fanout) + 1, 0.0);
  std::vector<int> cnt(static_cast<size_t>(max_fanout) + 1, 0);
  for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
    const circuit::Net& net = nl.net(n);
    if (net.is_clock || net.sinks.empty()) continue;
    geom::Rect box;
    if (net.driver.inst != circuit::kInvalid) box.expand(nl.inst(net.driver.inst).pos);
    for (const auto& s : net.sinks) {
      if (s.inst != circuit::kInvalid) box.expand(nl.inst(s.inst).pos);
    }
    if (box.empty()) continue;
    const int f = std::clamp(net.fanout(), 1, max_fanout);
    sum[static_cast<size_t>(f)] += box.half_perimeter();
    cnt[static_cast<size_t>(f)] += 1;
  }
  Wlm wlm;
  wlm.fanout_wl_um.assign(static_cast<size_t>(max_fanout) + 1, 0.0);
  double last = 1.0;
  for (int f = 1; f <= max_fanout; ++f) {
    if (cnt[static_cast<size_t>(f)] > 0) {
      last = sum[static_cast<size_t>(f)] / cnt[static_cast<size_t>(f)];
    }
    // Monotone fill for empty buckets.
    wlm.fanout_wl_um[static_cast<size_t>(f)] =
        std::max(last, f > 1 ? wlm.fanout_wl_um[static_cast<size_t>(f - 1)] : 0.0);
  }
  wlm.unit_r_kohm_um = extract::unit_r_kohm_um(tech, route::kLocal);
  wlm.unit_c_ff_um = extract::unit_c_ff_um(tech, route::kLocal);
  return wlm;
}

extract::Parasitics wlm_parasitics(const circuit::Netlist& nl, const Wlm& wlm) {
  extract::Parasitics par(static_cast<size_t>(nl.num_nets()));
  for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
    const circuit::Net& net = nl.net(n);
    if (net.is_clock || net.sinks.empty()) continue;
    const double wl = wlm.wl_um(net.fanout());
    auto& p = par[static_cast<size_t>(n)];
    p.wirelength_um = wl;
    p.wire_cap_ff = wl * wlm.unit_c_ff_um;
    p.wire_res_kohm = wl * wlm.unit_r_kohm_um;
  }
  return par;
}

}  // namespace m3d::synth
