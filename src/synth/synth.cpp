#include "synth/synth.hpp"

#include <algorithm>

#include "sta/sta.hpp"
#include "util/log.hpp"
#include "util/strf.hpp"

namespace m3d::synth {
namespace {

/// Splits nets with more than `max_fanout` sinks into buffer trees.
int buffer_high_fanout(circuit::Netlist* nl, const liberty::Library& lib,
                       int max_fanout) {
  int added = 0;
  // Iterate until stable (new buffer outputs may themselves exceed).
  bool changed = true;
  while (changed) {
    changed = false;
    const int num_nets = nl->num_nets();
    for (circuit::NetId n = 0; n < num_nets; ++n) {
      const circuit::Net& net = nl->net(n);
      if (net.is_clock || net.fanout() <= max_fanout) continue;
      // Group sinks into ceil(fanout / max_fanout) chunks, one buffer each.
      const auto sinks = net.sinks;  // copy: insert_buffer mutates
      const int groups =
          (net.fanout() + max_fanout - 1) / max_fanout;
      if (groups < 2) continue;
      const size_t per = (sinks.size() + static_cast<size_t>(groups) - 1) /
                         static_cast<size_t>(groups);
      for (size_t g0 = 0; g0 < sinks.size(); g0 += per) {
        const size_t g1 = std::min(g0 + per, sinks.size());
        std::vector<circuit::PinRef> chunk(sinks.begin() + static_cast<long>(g0),
                                           sinks.begin() + static_cast<long>(g1));
        nl->insert_buffer(n, chunk, lib, 2);
        ++added;
      }
      changed = true;
    }
  }
  return added;
}

}  // namespace

SynthReport synthesize(circuit::Netlist* nl, const liberty::Library& lib,
                       const Wlm& wlm, const SynthOptions& opt) {
  SynthReport rep;
  nl->bind(lib);
  rep.buffers_added = buffer_high_fanout(nl, lib, opt.max_fanout);

  // WLM-driven sizing to the target clock.
  sta::StaOptions sta_opt;
  sta_opt.clock_ns = opt.clock_ns;
  for (int round = 0; round < opt.sizing_rounds; ++round) {
    const auto par = wlm_parasitics(*nl, wlm);
    const auto timing = sta::run_sta(*nl, par, sta_opt);
    rep.wns_ps = timing.wns_ps;
    if (timing.met()) break;
    // Upsize the most negative-slack gates.
    std::vector<std::pair<double, circuit::InstId>> worst;
    for (int i = 0; i < nl->num_instances(); ++i) {
      const auto& inst = nl->inst(i);
      if (inst.dead || inst.libcell == nullptr) continue;
      const double slack = timing.inst_slack_ps[static_cast<size_t>(i)];
      if (slack < 0) worst.push_back({slack, i});
    }
    if (worst.empty()) break;
    std::sort(worst.begin(), worst.end());
    int changed = 0;
    const size_t limit = std::max<size_t>(16, worst.size() / 3);
    for (size_t k = 0; k < worst.size() && k < limit; ++k) {
      const circuit::InstId id = worst[k].second;
      const auto& inst = nl->inst(id);
      const liberty::LibCell* bigger = lib.pick(inst.func, inst.drive * 2);
      if (bigger != nullptr && bigger->drive > inst.drive) {
        nl->resize_inst(id, lib, bigger->drive);
        ++changed;
        ++rep.upsized;
      }
    }
    if (changed == 0) break;
  }

  rep.cells = 0;
  for (int i = 0; i < nl->num_instances(); ++i) {
    if (!nl->inst(i).dead) ++rep.cells;
  }
  rep.nets = nl->num_signal_nets();
  rep.cell_area_um2 = nl->total_cell_area_um2();
  rep.average_fanout = nl->average_fanout();
  util::info(util::strf("synth %s: %d cells, %.0f um2, wns=%.0f ps",
                        nl->name.c_str(), rep.cells, rep.cell_area_um2,
                        rep.wns_ps));
  return rep;
}

}  // namespace m3d::synth
