#include "route/route.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <queue>

#include "circuit/index.hpp"
#include "exec/exec.hpp"
#include "obs/mem.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strf.hpp"
#include "util/trace.hpp"

namespace m3d::route {
namespace {

struct Cell {
  int x, y;
};

/// Maze-search window inflation around a two-pin bbox, in gcells. Also the
/// inflation used to decide whether two reroutes are spatially disjoint.
constexpr int kMazeMargin = 12;

struct TwoPin {
  circuit::NetId net;
  int child_pin;   // pin index within the net's pin list (tree child)
  Cell a, b;       // a = parent side, b = child side
  int level = kLocal;
  std::vector<Cell> path;  // committed gcell path (including endpoints)
};

class Grid {
 public:
  Grid(int nx, int ny) : nx_(nx), ny_(ny) {
    for (int l = 0; l < kNumLevels; ++l) {
      usage_h_[l].assign(static_cast<size_t>((nx - 1) * ny), 0.0);
      usage_v_[l].assign(static_cast<size_t>(nx * (ny - 1)), 0.0);
      hist_h_[l].assign(usage_h_[l].size(), 0.0);
      hist_v_[l].assign(usage_v_[l].size(), 0.0);
    }
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  size_t h_idx(int i, int j) const { return static_cast<size_t>(j * (nx_ - 1) + i); }
  size_t v_idx(int i, int j) const { return static_cast<size_t>(j * nx_ + i); }

  double& usage_h(int l, int i, int j) { return usage_h_[l][h_idx(i, j)]; }
  double& usage_v(int l, int i, int j) { return usage_v_[l][v_idx(i, j)]; }
  double& hist_h(int l, int i, int j) { return hist_h_[l][h_idx(i, j)]; }
  double& hist_v(int l, int i, int j) { return hist_v_[l][v_idx(i, j)]; }

  std::array<std::vector<double>, kNumLevels>& usage_h_all() { return usage_h_; }
  std::array<std::vector<double>, kNumLevels>& usage_v_all() { return usage_v_; }

  double cap_h[kNumLevels] = {0, 0, 0};
  double cap_v[kNumLevels] = {0, 0, 0};

  double edge_cost(int l, bool horizontal, int i, int j) const {
    const double cap = horizontal ? cap_h[l] : cap_v[l];
    const double use = horizontal ? usage_h_[l][h_idx(i, j)] : usage_v_[l][v_idx(i, j)];
    const double hist = horizontal ? hist_h_[l][h_idx(i, j)] : hist_v_[l][v_idx(i, j)];
    double cost = 1.0 + hist;
    const double ratio = (use + 1.0) / std::max(cap, 1e-9);
    if (ratio > 0.8) cost += 8.0 * (ratio - 0.8) * (ratio - 0.8) * 25.0;
    return cost;
  }

  void add_path(int l, const std::vector<Cell>& path, double delta) {
    for (size_t k = 0; k + 1 < path.size(); ++k) {
      const Cell& p = path[k];
      const Cell& q = path[k + 1];
      if (p.y == q.y) {
        usage_h_[l][h_idx(std::min(p.x, q.x), p.y)] += delta;
      } else {
        usage_v_[l][v_idx(p.x, std::min(p.y, q.y))] += delta;
      }
    }
  }

  void add_history() {
    for (int l = 0; l < kNumLevels; ++l) {
      for (size_t e = 0; e < usage_h_[l].size(); ++e) {
        if (usage_h_[l][e] > cap_h[l]) hist_h_[l][e] += 1.0;
      }
      for (size_t e = 0; e < usage_v_[l].size(); ++e) {
        if (usage_v_[l][e] > cap_v[l]) hist_v_[l][e] += 1.0;
      }
    }
  }

  int count_overflow(double* max_cong) const {
    int over = 0;
    double mc = 0.0;
    for (int l = 0; l < kNumLevels; ++l) {
      for (size_t e = 0; e < usage_h_[l].size(); ++e) {
        mc = std::max(mc, usage_h_[l][e] / std::max(cap_h[l], 1e-9));
        if (usage_h_[l][e] > cap_h[l] + 1e-9) ++over;
      }
      for (size_t e = 0; e < usage_v_[l].size(); ++e) {
        mc = std::max(mc, usage_v_[l][e] / std::max(cap_v[l], 1e-9));
        if (usage_v_[l][e] > cap_v[l] + 1e-9) ++over;
      }
    }
    if (max_cong != nullptr) *max_cong = mc;
    return over;
  }

  bool path_overflows(int l, const std::vector<Cell>& path) const {
    for (size_t k = 0; k + 1 < path.size(); ++k) {
      const Cell& p = path[k];
      const Cell& q = path[k + 1];
      if (p.y == q.y) {
        if (usage_h_[l][h_idx(std::min(p.x, q.x), p.y)] > cap_h[l] + 1e-9) return true;
      } else {
        if (usage_v_[l][v_idx(p.x, std::min(p.y, q.y))] > cap_v[l] + 1e-9) return true;
      }
    }
    return false;
  }

 private:
  int nx_, ny_;
  std::array<std::vector<double>, kNumLevels> usage_h_, usage_v_;
  std::array<std::vector<double>, kNumLevels> hist_h_, hist_v_;
};

std::vector<Cell> l_path(const Cell& a, const Cell& b, bool x_first) {
  std::vector<Cell> path;
  Cell cur = a;
  path.push_back(cur);
  auto walk_x = [&] {
    while (cur.x != b.x) {
      cur.x += (b.x > cur.x) ? 1 : -1;
      path.push_back(cur);
    }
  };
  auto walk_y = [&] {
    while (cur.y != b.y) {
      cur.y += (b.y > cur.y) ? 1 : -1;
      path.push_back(cur);
    }
  };
  if (x_first) {
    walk_x();
    walk_y();
  } else {
    walk_y();
    walk_x();
  }
  return path;
}

double path_cost(const Grid& grid, int level, const std::vector<Cell>& path) {
  double cost = 0.0;
  for (size_t k = 0; k + 1 < path.size(); ++k) {
    const Cell& p = path[k];
    const Cell& q = path[k + 1];
    if (p.y == q.y) {
      cost += grid.edge_cost(level, true, std::min(p.x, q.x), p.y);
    } else {
      cost += grid.edge_cost(level, false, p.x, std::min(p.y, q.y));
    }
  }
  return cost;
}

/// Per-thread maze scratch with epoch-stamped lazy reset: the dist/parent
/// arrays are allocated once per thread and a cell is (re)initialized the
/// first time an epoch touches it, so repeated maze calls do no allocation
/// and no O(window) clearing. Each maze call is entirely thread-private —
/// the scratch never leaks state across calls (every read goes through
/// touch()), so results are bit-identical to the fresh-vector version.
struct MazeScratch {
  // obs::vector: the maze arrays are the router's dominant allocations, so
  // they opt into the counting allocator for the per-stage memory profile.
  obs::vector<double> dist;
  obs::vector<int> parent;
  obs::vector<uint64_t> stamp;
  uint64_t epoch = 0;

  /// Starts a maze over `cells` slots; grows the arrays if needed and
  /// invalidates every previous entry by bumping the epoch.
  void begin(size_t cells) {
    if (stamp.size() < cells) {
      dist.resize(cells);
      parent.resize(cells);
      stamp.resize(cells, 0);
    } else {
      util::MetricsRegistry::global().add_counter("route.maze_scratch_reuse");
    }
    ++epoch;
  }

  /// Lazily initializes slot `i` for the current epoch.
  void touch(size_t i) {
    if (stamp[i] != epoch) {
      stamp[i] = epoch;
      dist[i] = 1e18;
      parent[i] = -1;
    }
  }
};

/// A* maze route on one level, constrained to the bbox of (a, b) inflated by
/// `margin` gcells. Returns an empty path on failure.
std::vector<Cell> maze_route(const Grid& grid, int level, const Cell& a,
                             const Cell& b, int margin) {
  const int xlo = std::max(0, std::min(a.x, b.x) - margin);
  const int xhi = std::min(grid.nx() - 1, std::max(a.x, b.x) + margin);
  const int ylo = std::max(0, std::min(a.y, b.y) - margin);
  const int yhi = std::min(grid.ny() - 1, std::max(a.y, b.y) + margin);
  const int w = xhi - xlo + 1, h = yhi - ylo + 1;
  auto idx = [&](int x, int y) { return static_cast<size_t>((y - ylo) * w + (x - xlo)); };
  thread_local MazeScratch scratch;
  scratch.begin(static_cast<size_t>(w * h));
  obs::vector<double>& dist = scratch.dist;
  obs::vector<int>& parent = scratch.parent;
  using QE = std::pair<double, int>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  scratch.touch(idx(a.x, a.y));
  dist[idx(a.x, a.y)] = 0.0;
  pq.push({std::abs(a.x - b.x) + std::abs(a.y - b.y) * 1.0, static_cast<int>(idx(a.x, a.y))});
  const int dx[4] = {1, -1, 0, 0};
  const int dy[4] = {0, 0, 1, -1};
  while (!pq.empty()) {
    const auto [f, ci] = pq.top();
    pq.pop();
    const int cx = xlo + ci % w;
    const int cy = ylo + ci / w;
    if (cx == b.x && cy == b.y) break;
    const double d = dist[static_cast<size_t>(ci)];
    if (f - (std::abs(cx - b.x) + std::abs(cy - b.y)) > d + 1e-9) continue;
    for (int k = 0; k < 4; ++k) {
      const int nx2 = cx + dx[k], ny2 = cy + dy[k];
      if (nx2 < xlo || nx2 > xhi || ny2 < ylo || ny2 > yhi) continue;
      const bool horiz = dy[k] == 0;
      const double ec = horiz ? grid.edge_cost(level, true, std::min(cx, nx2), cy)
                              : grid.edge_cost(level, false, cx, std::min(cy, ny2));
      const double nd = d + ec;
      const size_t nidx = idx(nx2, ny2);
      scratch.touch(nidx);
      if (nd < dist[nidx] - 1e-12) {
        dist[nidx] = nd;
        parent[nidx] = ci;
        pq.push({nd + std::abs(nx2 - b.x) + std::abs(ny2 - b.y), static_cast<int>(nidx)});
      }
    }
  }
  scratch.touch(idx(b.x, b.y));
  if (dist[idx(b.x, b.y)] >= 1e17) return {};
  std::vector<Cell> path;
  int ci = static_cast<int>(idx(b.x, b.y));
  while (ci >= 0) {
    path.push_back({xlo + ci % w, ylo + ci / w});
    ci = parent[static_cast<size_t>(ci)];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

RouteResult global_route(const circuit::Netlist& nl, const place::Die& die,
                         const tech::Tech& tech, const RouteOptions& opt) {
  RouteResult result;
  const double die_w = die.core.width();
  const double die_h = die.core.height();
  double gc = opt.gcell_um > 0 ? opt.gcell_um
                               : std::max(die_w, die_h) / 96.0;
  gc = std::max(gc, 2.0 * die.row_height_um);
  const int nx = std::max(4, static_cast<int>(std::ceil(die_w / gc)));
  const int ny = std::max(4, static_cast<int>(std::ceil(die_h / gc)));
  Grid grid(nx, ny);

  // Edge capacities from the metal stack.
  for (const auto& layer : tech.stack().layers) {
    if (layer.level == tech::LayerLevel::kM1) continue;  // cell/pin layer
    int level = kLocal;
    if (layer.level == tech::LayerLevel::kIntermediate) level = kIntermediate;
    if (layer.level == tech::LayerLevel::kGlobal) level = kGlobal;
    const double tracks = gc / layer.pitch_um();
    if (layer.horizontal) {
      grid.cap_h[level] += tracks;
    } else {
      grid.cap_v[level] += tracks;
    }
  }
  // Local layers run over the cells; MIV/MB1 blockages inside T-MI cells
  // shave some local tracks (supplement S5).
  grid.cap_h[kLocal] *= (1.0 - opt.local_blockage_frac);
  grid.cap_v[kLocal] *= (1.0 - opt.local_blockage_frac);

  auto to_cell = [&](const geom::Pt& p) {
    return Cell{std::clamp(static_cast<int>(p.x / gc), 0, nx - 1),
                std::clamp(static_cast<int>(p.y / gc), 0, ny - 1)};
  };

  // Level thresholds (um), scaled with the node.
  const double node_scale = tech.node() == tech::Node::k7nm ? 7.0 / 45.0 : 1.0;
  const double t_local = 60.0 * node_scale;
  const double t_inter = 400.0 * node_scale;

  util::ScopedTimer build_span("route.build_topology");
  const circuit::NetlistIndex net_index(nl);
  result.nets.assign(static_cast<size_t>(nl.num_nets()), NetRoute{});
  std::vector<TwoPin> twopins;
  std::vector<std::vector<int>> net_pin_parent;  // per net: MST parent of pin k

  // Build per-net pin lists and MST topology.
  struct NetPins {
    std::vector<geom::Pt> pts;      // [0] = driver
    std::vector<int> sink_of_pin;   // pin index -> sink index (-1 for driver/pad)
  };
  std::vector<NetPins> net_pins(static_cast<size_t>(nl.num_nets()));
  std::vector<std::vector<int>> parent_of(static_cast<size_t>(nl.num_nets()));

  for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
    const circuit::Net& net = nl.net(n);
    if (net.is_clock || net.sinks.empty()) continue;
    NetPins& np = net_pins[static_cast<size_t>(n)];
    // Driver pin.
    geom::Pt drv;
    if (net.driver.inst != circuit::kInvalid) {
      drv = nl.inst(net.driver.inst).pos;
    } else {
      // Indexed pad lookup; the span runs in port order, so keeping the
      // last input-port match reproduces the old full-scan loop exactly.
      for (int pi : net_index.ports_of_net(n)) {
        const auto& port = nl.ports()[static_cast<size_t>(pi)];
        if (port.is_input) drv = port.pos;
      }
    }
    np.pts.push_back(drv);
    np.sink_of_pin.push_back(-1);
    for (size_t k = 0; k < net.sinks.size(); ++k) {
      const auto& s = net.sinks[k];
      if (s.inst == circuit::kInvalid) continue;
      np.pts.push_back(nl.inst(s.inst).pos);
      np.sink_of_pin.push_back(static_cast<int>(k));
    }
    if (net.is_primary_output) {
      for (int pi : net_index.ports_of_net(n)) {
        const auto& port = nl.ports()[static_cast<size_t>(pi)];
        if (!port.is_input) {
          np.pts.push_back(port.pos);
          np.sink_of_pin.push_back(-1);
        }
      }
    }
    const int p = static_cast<int>(np.pts.size());
    if (p < 2) continue;
    // Prim MST rooted at the driver.
    std::vector<int>& parent = parent_of[static_cast<size_t>(n)];
    parent.assign(static_cast<size_t>(p), -1);
    std::vector<bool> in_tree(static_cast<size_t>(p), false);
    std::vector<double> best(static_cast<size_t>(p), 1e18);
    std::vector<int> best_par(static_cast<size_t>(p), 0);
    in_tree[0] = true;
    for (int k = 1; k < p; ++k) {
      best[static_cast<size_t>(k)] = geom::manhattan(np.pts[0], np.pts[static_cast<size_t>(k)]);
    }
    for (int it = 1; it < p; ++it) {
      int pick = -1;
      double bd = 1e18;
      for (int k = 1; k < p; ++k) {
        if (!in_tree[static_cast<size_t>(k)] && best[static_cast<size_t>(k)] < bd) {
          bd = best[static_cast<size_t>(k)];
          pick = k;
        }
      }
      if (pick < 0) break;
      in_tree[static_cast<size_t>(pick)] = true;
      parent[static_cast<size_t>(pick)] = best_par[static_cast<size_t>(pick)];
      for (int k = 1; k < p; ++k) {
        if (in_tree[static_cast<size_t>(k)]) continue;
        const double d = geom::manhattan(np.pts[static_cast<size_t>(pick)],
                                         np.pts[static_cast<size_t>(k)]);
        if (d < best[static_cast<size_t>(k)]) {
          best[static_cast<size_t>(k)] = d;
          best_par[static_cast<size_t>(k)] = pick;
        }
      }
    }
    for (int k = 1; k < p; ++k) {
      TwoPin tp;
      tp.net = n;
      tp.child_pin = k;
      tp.a = to_cell(np.pts[static_cast<size_t>(parent[static_cast<size_t>(k)])]);
      tp.b = to_cell(np.pts[static_cast<size_t>(k)]);
      const double len =
          geom::manhattan(np.pts[static_cast<size_t>(parent[static_cast<size_t>(k)])],
                          np.pts[static_cast<size_t>(k)]);
      tp.level = len <= t_local ? kLocal : (len <= t_inter ? kIntermediate : kGlobal);
      twopins.push_back(std::move(tp));
    }
    util::count("route.nets");
  }
  build_span.stop();
  util::count("route.twopins", static_cast<double>(twopins.size()));

  // Initial pattern routing, short connections first.
  util::ScopedTimer pattern_span("route.pattern");
  std::vector<int> order(twopins.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ta = twopins[static_cast<size_t>(a)];
    const auto& tb = twopins[static_cast<size_t>(b)];
    return std::abs(ta.a.x - ta.b.x) + std::abs(ta.a.y - ta.b.y) <
           std::abs(tb.a.x - tb.b.x) + std::abs(tb.a.y - tb.b.y);
  });
  for (int ti : order) {
    TwoPin& tp = twopins[static_cast<size_t>(ti)];
    const auto p1 = l_path(tp.a, tp.b, true);
    const auto p2 = l_path(tp.a, tp.b, false);
    tp.path = (path_cost(grid, tp.level, p1) <= path_cost(grid, tp.level, p2)) ? p1 : p2;
    grid.add_path(tp.level, tp.path, 1.0);
  }
  pattern_span.stop();

  // Rip-up and reroute, in batches of spatially disjoint two-pins. Each
  // iteration collects the overflowing two-pins (shortest first, like the
  // pattern pass), greedily packs them into batches whose inflated maze
  // windows don't overlap, and then for each batch: rips every member,
  // reroutes every member against the frozen batch-start grid — this is
  // the parallel section; the grid is read-only while the mazes run — and
  // commits the results in order. Batch formation and every maze see only
  // deterministic grid states, so the routing is bit-identical at any
  // thread count (the batched schedule itself, not the thread count, is
  // what differs from a one-at-a-time sweep).
  util::ScopedTimer rrr_span("route.rrr");
  struct Window {
    int xlo, xhi, ylo, yhi;
  };
  auto window_of = [&](const TwoPin& tp) {
    return Window{std::max(0, std::min(tp.a.x, tp.b.x) - kMazeMargin),
                  std::min(nx - 1, std::max(tp.a.x, tp.b.x) + kMazeMargin),
                  std::max(0, std::min(tp.a.y, tp.b.y) - kMazeMargin),
                  std::min(ny - 1, std::max(tp.a.y, tp.b.y) + kMazeMargin)};
  };
  auto overlaps = [](const Window& a, const Window& b) {
    return a.xlo <= b.xhi && b.xlo <= a.xhi && a.ylo <= b.yhi && b.ylo <= a.yhi;
  };
  struct Reroute {
    int level = 0;
    std::vector<Cell> path;
  };
  for (int iter = 0; iter < opt.rrr_iters; ++iter) {
    double mc = 0.0;
    const int over = grid.count_overflow(&mc);
    util::debug(util::strf("route iter %d: overflow=%d maxcong=%.2f", iter, over, mc));
    if (over == 0) break;
    util::count("route.rrr_iters");
    grid.add_history();
    std::vector<int> todo;
    for (int ti : order) {
      const TwoPin& tp = twopins[static_cast<size_t>(ti)];
      if (grid.path_overflows(tp.level, tp.path)) todo.push_back(ti);
    }
    while (!todo.empty()) {
      // Greedy maximal prefix-respecting independent set: a two-pin joins
      // the batch unless its window overlaps an earlier member's.
      std::vector<int> batch, deferred;
      std::vector<Window> windows;
      for (int ti : todo) {
        const Window w = window_of(twopins[static_cast<size_t>(ti)]);
        bool clash = false;
        for (const Window& bw : windows) {
          if (overlaps(w, bw)) {
            clash = true;
            break;
          }
        }
        if (clash) {
          deferred.push_back(ti);
        } else {
          batch.push_back(ti);
          windows.push_back(w);
        }
      }
      util::count("route.maze_batches");
      // Rip every member first, so the mazes all route against the same
      // batch-start congestion state.
      for (int ti : batch) {
        TwoPin& tp = twopins[static_cast<size_t>(ti)];
        util::count("route.overflow_retries");
        grid.add_path(tp.level, tp.path, -1.0);
      }
      std::vector<Reroute> rerouted(batch.size());
      exec::parallel_for(
          batch.size(),
          [&](size_t bb, size_t be) {
            for (size_t bi = bb; bi < be; ++bi) {
              const TwoPin& tp = twopins[static_cast<size_t>(batch[bi])];
              // Try levels: preferred, then one up, then one down.
              int best_level = tp.level;
              std::vector<Cell> best_path;
              double best_cost = 1e18;
              for (int l :
                   {tp.level, std::min(tp.level + 1, static_cast<int>(kGlobal)),
                    std::max(tp.level - 1, static_cast<int>(kLocal))}) {
                util::count("route.maze_calls");
                auto path = maze_route(grid, l, tp.a, tp.b, kMazeMargin);
                if (path.empty()) continue;
                // Level changes cost vias; bias toward the preferred level.
                const double cost =
                    path_cost(grid, l, path) + 4.0 * std::abs(l - tp.level);
                if (cost < best_cost) {
                  best_cost = cost;
                  best_path = std::move(path);
                  best_level = l;
                }
                if (l == tp.level && !grid.path_overflows(l, best_path)) break;
              }
              rerouted[bi].level = best_level;
              rerouted[bi].path = std::move(best_path);
            }
          },
          /*grain=*/1);
      // Commit in batch order; a failed maze keeps the ripped-up old path.
      for (size_t bi = 0; bi < batch.size(); ++bi) {
        TwoPin& tp = twopins[static_cast<size_t>(batch[bi])];
        if (!rerouted[bi].path.empty()) {
          tp.level = rerouted[bi].level;
          tp.path = std::move(rerouted[bi].path);
        }
        grid.add_path(tp.level, tp.path, 1.0);
      }
      todo = std::move(deferred);
    }
  }
  rrr_span.stop();

  // Collect results.
  for (const TwoPin& tp : twopins) {
    NetRoute& nr = result.nets[static_cast<size_t>(tp.net)];
    const double wl = (static_cast<double>(tp.path.size()) - 1.0) * gc;
    nr.wl_um[static_cast<size_t>(tp.level)] += wl;
    int bends = 0;
    for (size_t k = 2; k < tp.path.size(); ++k) {
      const bool h1 = tp.path[k - 1].y == tp.path[k - 2].y;
      const bool h2 = tp.path[k].y == tp.path[k - 1].y;
      if (h1 != h2) ++bends;
    }
    nr.vias += 2 * (tp.level + 1) + bends;
  }
  // Per-sink path wirelengths via the MST parent chains. The two-pins of a
  // net are gathered through a CSR index (built in one pass, preserving the
  // original twopin order per net) instead of the old rescan of the whole
  // twopin list for every net.
  std::vector<int> tp_off(static_cast<size_t>(nl.num_nets()) + 1, 0);
  for (const TwoPin& tp : twopins) {
    ++tp_off[static_cast<size_t>(tp.net) + 1];
  }
  for (size_t n = 1; n < tp_off.size(); ++n) tp_off[n] += tp_off[n - 1];
  std::vector<int> tp_ids(twopins.size());
  {
    std::vector<int> cursor(tp_off.begin(), tp_off.end() - 1);
    for (size_t t = 0; t < twopins.size(); ++t) {
      tp_ids[static_cast<size_t>(cursor[static_cast<size_t>(twopins[t].net)]++)] =
          static_cast<int>(t);
    }
  }
  for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
    const circuit::Net& net = nl.net(n);
    if (net.is_clock || net.sinks.empty()) continue;
    NetRoute& nr = result.nets[static_cast<size_t>(n)];
    nr.sink_path_wl.assign(net.sinks.size(), {});
    const auto& parent = parent_of[static_cast<size_t>(n)];
    const auto& np = net_pins[static_cast<size_t>(n)];
    if (parent.empty()) continue;
    // Edge data per child pin.
    std::vector<std::array<double, kNumLevels>> edge_wl(parent.size(),
                                                        std::array<double, kNumLevels>{});
    for (int t = tp_off[static_cast<size_t>(n)]; t < tp_off[static_cast<size_t>(n) + 1]; ++t) {
      const TwoPin& tp = twopins[static_cast<size_t>(tp_ids[static_cast<size_t>(t)])];
      edge_wl[static_cast<size_t>(tp.child_pin)][static_cast<size_t>(tp.level)] +=
          (static_cast<double>(tp.path.size()) - 1.0) * gc;
    }
    for (size_t pin = 1; pin < parent.size(); ++pin) {
      const int sink = np.sink_of_pin[pin];
      if (sink < 0) continue;
      std::array<double, kNumLevels> acc{};
      int cur = static_cast<int>(pin);
      int guard = 0;
      while (cur > 0 && guard++ < 10000) {
        for (int l = 0; l < kNumLevels; ++l) acc[static_cast<size_t>(l)] += edge_wl[static_cast<size_t>(cur)][static_cast<size_t>(l)];
        cur = parent[static_cast<size_t>(cur)];
      }
      nr.sink_path_wl[static_cast<size_t>(sink)] = acc;
    }
  }

  for (const auto& nr : result.nets) {
    for (int l = 0; l < kNumLevels; ++l) {
      result.wl_by_level[static_cast<size_t>(l)] += nr.wl_um[static_cast<size_t>(l)];
    }
    result.total_vias += nr.vias;
  }
  result.total_wl_um = result.wl_by_level[0] + result.wl_by_level[1] + result.wl_by_level[2];
  result.overflow_edges = grid.count_overflow(&result.max_congestion);
  result.routed = result.overflow_edges == 0;
  util::count("route.overflow_edges_final",
              static_cast<double>(result.overflow_edges));
  util::set_gauge("route.max_congestion", result.max_congestion);
  util::set_gauge("route.total_wl_um", result.total_wl_um);
  result.nx = nx;
  result.ny = ny;
  result.gcell_um = gc;
  result.usage_h = grid.usage_h_all();
  result.usage_v = grid.usage_v_all();
  for (int l = 0; l < kNumLevels; ++l) {
    result.cap_h[static_cast<size_t>(l)] = grid.cap_h[l];
    result.cap_v[static_cast<size_t>(l)] = grid.cap_v[l];
  }
  return result;
}

}  // namespace m3d::route
