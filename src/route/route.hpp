// Congestion-driven global routing on a gcell grid with three routing
// levels (local / intermediate / global — paper Table 3 and Fig 10).
//
// Per net: MST topology over the pins, pattern (L-shape) routing per 2-pin
// connection with congestion lookahead, level assignment by connection
// length, and rip-up-and-reroute with A* maze fallback plus history costs.
// M1/MB1 are pin/cell layers and carry no global routing (the paper measures
// MB1 at 0.3% of wirelength).
//
// Capacities come from the Tech metal stack: T-MI's 3 extra local layers
// show up here as extra local tracks, and the T-MI+M stack (supplement S9)
// as a different local/intermediate split. An optional local-capacity derate
// models the MIV/MB1 blockages of supplement S5.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "place/place.hpp"
#include "tech/tech.hpp"

namespace m3d::route {

enum Level { kLocal = 0, kIntermediate = 1, kGlobal = 2, kNumLevels = 3 };

struct RouteOptions {
  double gcell_um = 0.0;  // 0: auto (~die/96)
  int rrr_iters = 4;
  double local_blockage_frac = 0.0;  // capacity derate under cells (S5)
  uint64_t seed = 7;
};

struct NetRoute {
  std::array<double, kNumLevels> wl_um{};  // wirelength per level
  int vias = 0;
  // Per sink (parallel to Net::sinks): wirelength of the driver->sink path,
  // per level, for Elmore extraction.
  std::vector<std::array<double, kNumLevels>> sink_path_wl;

  double total_wl() const { return wl_um[0] + wl_um[1] + wl_um[2]; }
};

struct RouteResult {
  std::vector<NetRoute> nets;  // indexed by NetId
  double total_wl_um = 0.0;
  std::array<double, kNumLevels> wl_by_level{};
  long total_vias = 0;
  int overflow_edges = 0;
  double max_congestion = 0.0;
  bool routed = false;  // true when no edge overflows

  // Congestion view for snapshots (Fig 3 / Fig 10): per level, H and V edge
  // usage and capacity on the nx x ny grid.
  int nx = 0, ny = 0;
  double gcell_um = 0.0;
  std::array<std::vector<double>, kNumLevels> usage_h, usage_v;
  std::array<double, kNumLevels> cap_h{}, cap_v{};
};

RouteResult global_route(const circuit::Netlist& nl, const place::Die& die,
                         const tech::Tech& tech, const RouteOptions& opt);

}  // namespace m3d::route
