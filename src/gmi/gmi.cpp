#include "gmi/gmi.hpp"

#include <cassert>

#include "cts/cts.hpp"
#include "extract/extract.hpp"
#include "opt/opt.hpp"
#include "power/power.hpp"
#include "sta/sta.hpp"
#include "synth/synth.hpp"
#include "util/log.hpp"
#include "util/strf.hpp"

namespace m3d::gmi {

flow::FlowResult run_gmi_flow(const flow::FlowOptions& opt, GmiExtra* extra) {
  assert(opt.lib != nullptr && opt.clock_ns > 0.0);
  // Planar cells, but the routing sees the richer monolithic stack (a
  // stand-in for each tier's own local metal).
  const tech::Tech cell_tech(opt.node, tech::Style::k2D);
  tech::Tech route_tech(opt.node, tech::Style::kTMI);

  flow::FlowResult res;
  res.style = tech::Style::kTMI;  // reported as a 3D style
  res.clock_ns = opt.clock_ns;

  gen::GenOptions gopt;
  gopt.scale_shift = opt.scale_shift;
  gopt.seed = opt.seed;
  res.netlist = gen::make_benchmark(opt.bench, gopt);
  circuit::Netlist& nl = res.netlist;
  res.bench_name = nl.name + "-GMI";

  // Synthesis: G-MI wires are shorter than 2D (halved footprint), though
  // less so than T-MI; scale the statistical WLM accordingly.
  double cell_area = 0.0;
  for (int i = 0; i < nl.num_instances(); ++i) {
    const auto* c = opt.lib->pick(nl.inst(i).func, nl.inst(i).drive);
    if (c != nullptr) cell_area += c->area_um2();
  }
  synth::Wlm wlm = synth::make_statistical_wlm(
      cell_area / std::max(0.2, opt.target_util) / 2.0, cell_tech);
  wlm = wlm.scaled(1.0);  // the halved-area estimate already shortens it
  synth::SynthOptions sopt;
  sopt.clock_ns = opt.clock_ns;
  synth::synthesize(&nl, *opt.lib, wlm, sopt);

  // Tier assignment by min-cut.
  GmiExtra local;
  GmiExtra& ex = extra != nullptr ? *extra : local;
  ex.partition = partition_tiers(nl, {});
  ex.routing_mivs = ex.partition.cut_nets;

  // Two tiers: half the core area, interleaved half-height row lanes.
  res.die = place::make_die(&nl, opt.target_util * 2.0,
                            cell_tech.row_height_um() / 2.0);
  place::PlaceOptions popt;
  popt.seed = opt.seed;
  place::place_design(&nl, res.die, popt);
  cts::build_clock_tree(&nl, *opt.lib);

  opt::OptOptions oopt;
  oopt.clock_ns = opt.clock_ns;
  opt::optimize(&nl, *opt.lib,
                [&](const circuit::Netlist& n) {
                  return extract::extract_from_placement(n, route_tech);
                },
                oopt);

  route::RouteOptions ropt;
  ropt.seed = opt.seed;
  res.routes = route::global_route(nl, res.die, route_tech, ropt);

  // Extraction, with one MIV on every tier-crossing net.
  const auto add_mivs = [&](extract::Parasitics par) {
    const auto& miv = route_tech.cut(route_tech.miv_cut_index());
    for (circuit::NetId n = 0; n < nl.num_nets(); ++n) {
      const auto& net = nl.net(n);
      if (net.is_clock || net.sinks.empty()) continue;
      bool t0 = false, t1 = false;
      auto mark = [&](circuit::InstId i) {
        if (i == circuit::kInvalid ||
            i >= static_cast<int>(ex.partition.tier_of.size())) {
          return;
        }
        const int t = ex.partition.tier_of[static_cast<size_t>(i)];
        if (t == 0) t0 = true;
        if (t == 1) t1 = true;
      };
      mark(net.driver.inst);
      for (const auto& s : net.sinks) mark(s.inst);
      if (t0 && t1) {
        par[static_cast<size_t>(n)].wire_cap_ff += miv.c_ff;
        par[static_cast<size_t>(n)].wire_res_kohm += miv.r_kohm;
      }
    }
    return par;
  };

  opt::OptOptions oopt2 = oopt;
  oopt2.allow_buffering = false;
  opt::optimize(&nl, *opt.lib,
                [&](const circuit::Netlist& n) {
                  return add_mivs(extract::extract_from_routes(n, route_tech,
                                                               res.routes));
                },
                oopt2);

  const auto par = add_mivs(extract::extract_from_routes(nl, route_tech, res.routes));
  sta::StaOptions sta_opt;
  sta_opt.clock_ns = opt.clock_ns;
  const auto timing = sta::run_sta(nl, par, sta_opt);
  power::PowerOptions pw;
  pw.clock_ns = opt.clock_ns;
  pw.vdd_v = opt.lib->vdd_v;
  pw.pi_activity = opt.pi_activity;
  pw.seq_activity = opt.seq_activity;
  const auto power = power::run_power(nl, par, &timing, pw);

  res.footprint_um2 = res.die.core.area();
  res.cells = 0;
  for (int i = 0; i < nl.num_instances(); ++i) {
    if (!nl.inst(i).dead) ++res.cells;
  }
  res.buffers = nl.count_buffers();
  res.utilization = place::utilization(nl, res.die) / 2.0;  // per tier
  res.total_wl_um = res.routes.total_wl_um;
  res.wns_ps = timing.wns_ps;
  res.timing_met = timing.met();
  res.routed = res.routes.routed;
  res.total_uw = power.total_uw;
  res.cell_uw = power.cell_internal_uw;
  res.net_uw = power.net_switching_uw;
  res.leak_uw = power.leakage_uw;
  res.wire_uw = power.wire_uw;
  res.pin_uw = power.pin_uw;
  res.wire_cap_pf = power.wire_cap_pf;
  res.pin_cap_pf = power.pin_cap_pf;
  res.longest_path_ns = timing.critical_path_ps / 1000.0;
  util::info(util::strf("gmi %s: wl=%.3fmm wns=%+.0fps P=%.1fuW mivs=%d (%s)",
                        res.bench_name.c_str(), res.total_wl_um / 1000.0,
                        res.wns_ps, res.total_uw, ex.routing_mivs,
                        res.timing_met ? "met" : "VIOLATED"));
  return res;
}

}  // namespace m3d::gmi
