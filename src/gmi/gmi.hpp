// Gate-level monolithic 3D integration (G-MI): planar 2D cells on two
// stacked device tiers, tier assignment by FM min-cut, inter-tier nets
// through routing MIVs. The paper's Section 1 contrasts this style with
// T-MI; this module implements it so the library can reproduce that
// comparison (an extension beyond the paper's own tables).
//
// Model: the die area halves (two tiers of rows); placement treats the two
// tiers as interleaved row lanes sharing the XY plane; the FM partition
// determines which nets cross tiers and pay one MIV each in extraction.
// Routing uses the T-MI metal stack as a stand-in for the doubled per-tier
// local metal a real G-MI process provides.
#pragma once

#include "flow/flow.hpp"
#include "gmi/partition.hpp"

namespace m3d::gmi {

struct GmiExtra {
  PartitionResult partition;
  int routing_mivs = 0;  // one per cut net
};

/// Runs the full flow in G-MI style. `opt.lib` must be the *2D* library
/// (G-MI keeps planar cells). opt.clock_ns must be set (use the 2D flow's
/// closed clock for an iso-performance comparison).
flow::FlowResult run_gmi_flow(const flow::FlowOptions& opt,
                              GmiExtra* extra = nullptr);

}  // namespace m3d::gmi
