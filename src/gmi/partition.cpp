#include "gmi/partition.hpp"

#include <algorithm>
#include <cassert>
#include <array>
#include <queue>

#include "util/rng.hpp"

namespace m3d::gmi {
namespace {

struct FmState {
  const circuit::Netlist& nl;
  std::vector<int> tier;                 // per inst
  std::vector<double> area;              // per inst
  std::vector<std::vector<circuit::NetId>> nets_of;  // per inst
  std::vector<std::array<int, 2>> pins_in;           // per net: pins per tier
  double tier_area[2] = {0, 0};
  double total_area = 0;

  explicit FmState(const circuit::Netlist& netlist) : nl(netlist) {
    const int n = nl.num_instances();
    tier.assign(static_cast<size_t>(n), -1);
    area.assign(static_cast<size_t>(n), 0.0);
    nets_of.assign(static_cast<size_t>(n), {});
    for (int i = 0; i < n; ++i) {
      const auto& inst = nl.inst(i);
      if (inst.dead) continue;
      area[static_cast<size_t>(i)] =
          inst.libcell != nullptr ? inst.libcell->area_um2() : 1.0;
      total_area += area[static_cast<size_t>(i)];
    }
    pins_in.assign(static_cast<size_t>(nl.num_nets()), {0, 0});
    for (circuit::NetId nid = 0; nid < nl.num_nets(); ++nid) {
      const auto& net = nl.net(nid);
      if (net.is_clock || net.sinks.empty()) continue;
      if (net.driver.inst != circuit::kInvalid) {
        nets_of[static_cast<size_t>(net.driver.inst)].push_back(nid);
      }
      for (const auto& s : net.sinks) {
        if (s.inst != circuit::kInvalid) {
          nets_of[static_cast<size_t>(s.inst)].push_back(nid);
        }
      }
    }
  }

  void assign(int inst, int t) {
    assert(tier[static_cast<size_t>(inst)] == -1);
    tier[static_cast<size_t>(inst)] = t;
    tier_area[t] += area[static_cast<size_t>(inst)];
    for (circuit::NetId nid : nets_of[static_cast<size_t>(inst)]) {
      ++pins_in[static_cast<size_t>(nid)][static_cast<size_t>(t)];
    }
  }

  /// Cut-size change if `inst` moves to the other tier (negative = better).
  int gain(int inst) const {
    const int from = tier[static_cast<size_t>(inst)];
    const int to = 1 - from;
    int g = 0;
    for (circuit::NetId nid : nets_of[static_cast<size_t>(inst)]) {
      const auto& p = pins_in[static_cast<size_t>(nid)];
      // Net becomes uncut if this was the only pin on `from`.
      if (p[static_cast<size_t>(from)] == 1 && p[static_cast<size_t>(to)] > 0) ++g;
      // Net becomes cut if it was entirely on `from`.
      if (p[static_cast<size_t>(to)] == 0 && p[static_cast<size_t>(from)] > 1) --g;
    }
    return g;
  }

  void move(int inst) {
    const int from = tier[static_cast<size_t>(inst)];
    const int to = 1 - from;
    tier[static_cast<size_t>(inst)] = to;
    tier_area[from] -= area[static_cast<size_t>(inst)];
    tier_area[to] += area[static_cast<size_t>(inst)];
    for (circuit::NetId nid : nets_of[static_cast<size_t>(inst)]) {
      --pins_in[static_cast<size_t>(nid)][static_cast<size_t>(from)];
      ++pins_in[static_cast<size_t>(nid)][static_cast<size_t>(to)];
    }
  }

  int cut() const {
    int c = 0;
    for (const auto& p : pins_in) c += (p[0] > 0 && p[1] > 0) ? 1 : 0;
    return c;
  }
};

}  // namespace

PartitionResult partition_tiers(const circuit::Netlist& nl,
                                const PartitionOptions& opt) {
  FmState st(nl);
  // Initial: BFS-ish fill by instance order keeps connected logic together
  // better than random; alternate once half the area is placed.
  util::Rng rng(opt.seed);
  std::vector<int> order;
  for (int i = 0; i < nl.num_instances(); ++i) {
    if (!nl.inst(i).dead) order.push_back(i);
  }
  double acc = 0;
  for (int i : order) {
    const int t = acc < st.total_area / 2 ? 0 : 1;
    st.assign(i, t);
    acc += st.area[static_cast<size_t>(i)];
  }

  const double max_tier_area =
      st.total_area * (0.5 + opt.balance_tolerance / 2);

  // FM passes: repeatedly move the best-gain cell that keeps balance; lock
  // each cell once per pass; roll back to the best prefix. A lazy max-heap
  // keeps passes near-linear: popped entries whose gain went stale are
  // re-inserted with their fresh gain instead of being applied.
  for (int pass = 0; pass < opt.passes; ++pass) {
    std::vector<bool> locked(static_cast<size_t>(nl.num_instances()), false);
    std::priority_queue<std::pair<int, int>> heap;  // (gain, inst)
    for (int i : order) heap.push({st.gain(i), i});
    std::vector<int> moves;
    int best_prefix = 0;
    int cum_gain = 0, best_gain = 0;
    while (!heap.empty()) {
      const auto [g_stale, best] = heap.top();
      heap.pop();
      if (locked[static_cast<size_t>(best)]) continue;
      const int g = st.gain(best);
      if (g < g_stale) {
        heap.push({g, best});  // stale: requeue with the fresh gain
        continue;
      }
      const int to = 1 - st.tier[static_cast<size_t>(best)];
      if (st.tier_area[to] + st.area[static_cast<size_t>(best)] > max_tier_area) {
        locked[static_cast<size_t>(best)] = true;  // cannot move this pass
        continue;
      }
      st.move(best);
      locked[static_cast<size_t>(best)] = true;
      moves.push_back(best);
      cum_gain += g;
      if (cum_gain > best_gain) {
        best_gain = cum_gain;
        best_prefix = static_cast<int>(moves.size());
      }
      // Early exit when clearly past the peak.
      if (cum_gain < best_gain - 50) break;
    }
    // Roll back moves after the best prefix.
    for (size_t k = moves.size(); k > static_cast<size_t>(best_prefix); --k) {
      st.move(moves[k - 1]);
    }
    if (best_gain <= 0) break;
  }

  PartitionResult res;
  res.tier_of = st.tier;
  res.cut_nets = st.cut();
  res.area_imbalance =
      std::abs(st.tier_area[0] - st.tier_area[1]) / std::max(st.total_area, 1e-9);
  return res;
}

int count_cut_nets(const circuit::Netlist& nl, const std::vector<int>& tier_of) {
  int cut = 0;
  for (circuit::NetId nid = 0; nid < nl.num_nets(); ++nid) {
    const auto& net = nl.net(nid);
    if (net.is_clock || net.sinks.empty()) continue;
    bool t0 = false, t1 = false;
    auto mark = [&](circuit::InstId i) {
      if (i == circuit::kInvalid) return;
      (tier_of[static_cast<size_t>(i)] == 0 ? t0 : t1) = true;
    };
    mark(net.driver.inst);
    for (const auto& s : net.sinks) mark(s.inst);
    cut += (t0 && t1) ? 1 : 0;
  }
  return cut;
}

}  // namespace m3d::gmi
