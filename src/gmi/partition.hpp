// Fiduccia-Mattheyses min-cut bipartitioning of a netlist into two device
// tiers — the core step of *gate-level* monolithic integration (G-MI), the
// alternative 3D style the paper contrasts with T-MI (Section 1: "as in
// TSV-based 3D ICs, we may place planar cells in different layers and
// connect them using MIVs").
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"

namespace m3d::gmi {

struct PartitionOptions {
  double balance_tolerance = 0.1;  // allowed area imbalance fraction
  int passes = 6;
  uint64_t seed = 1;
};

struct PartitionResult {
  std::vector<int> tier_of;  // per InstId: 0 or 1 (-1 for dead)
  int cut_nets = 0;          // nets spanning both tiers (need routing MIVs)
  double area_imbalance = 0.0;
};

PartitionResult partition_tiers(const circuit::Netlist& nl,
                                const PartitionOptions& opt = {});

/// Number of nets whose pins touch both tiers under `tier_of`.
int count_cut_nets(const circuit::Netlist& nl, const std::vector<int>& tier_of);

}  // namespace m3d::gmi
