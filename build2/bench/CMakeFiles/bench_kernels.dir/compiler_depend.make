# Empty compiler generated dependencies file for bench_kernels.
# This may be replaced when dependencies are built.
