file(REMOVE_RECURSE
  "CMakeFiles/bench_kernels.dir/bench_kernels.cpp.o"
  "CMakeFiles/bench_kernels.dir/bench_kernels.cpp.o.d"
  "bench_kernels"
  "bench_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
