# Empty dependencies file for bench_s5_blockage.
# This may be replaced when dependencies are built.
