file(REMOVE_RECURSE
  "CMakeFiles/bench_s5_blockage.dir/bench_s5_blockage.cpp.o"
  "CMakeFiles/bench_s5_blockage.dir/bench_s5_blockage.cpp.o.d"
  "bench_s5_blockage"
  "bench_s5_blockage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s5_blockage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
