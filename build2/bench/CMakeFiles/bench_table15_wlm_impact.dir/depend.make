# Empty dependencies file for bench_table15_wlm_impact.
# This may be replaced when dependencies are built.
