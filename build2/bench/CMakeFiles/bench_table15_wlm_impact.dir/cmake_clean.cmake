file(REMOVE_RECURSE
  "CMakeFiles/bench_table15_wlm_impact.dir/bench_table15_wlm_impact.cpp.o"
  "CMakeFiles/bench_table15_wlm_impact.dir/bench_table15_wlm_impact.cpp.o.d"
  "bench_table15_wlm_impact"
  "bench_table15_wlm_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table15_wlm_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
