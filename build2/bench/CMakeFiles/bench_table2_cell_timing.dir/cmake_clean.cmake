file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cell_timing.dir/bench_table2_cell_timing.cpp.o"
  "CMakeFiles/bench_table2_cell_timing.dir/bench_table2_cell_timing.cpp.o.d"
  "bench_table2_cell_timing"
  "bench_table2_cell_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cell_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
