# Empty dependencies file for bench_table2_cell_timing.
# This may be replaced when dependencies are built.
