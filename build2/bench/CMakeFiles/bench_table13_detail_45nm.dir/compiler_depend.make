# Empty compiler generated dependencies file for bench_table13_detail_45nm.
# This may be replaced when dependencies are built.
