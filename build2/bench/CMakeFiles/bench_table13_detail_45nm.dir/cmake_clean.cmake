file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_detail_45nm.dir/bench_table13_detail_45nm.cpp.o"
  "CMakeFiles/bench_table13_detail_45nm.dir/bench_table13_detail_45nm.cpp.o.d"
  "bench_table13_detail_45nm"
  "bench_table13_detail_45nm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_detail_45nm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
