file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_wlm.dir/bench_fig6_wlm.cpp.o"
  "CMakeFiles/bench_fig6_wlm.dir/bench_fig6_wlm.cpp.o.d"
  "bench_fig6_wlm"
  "bench_fig6_wlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
