# Empty dependencies file for bench_fig6_wlm.
# This may be replaced when dependencies are built.
