file(REMOVE_RECURSE
  "libm3d_bench_common.a"
)
