file(REMOVE_RECURSE
  "CMakeFiles/m3d_bench_common.dir/common.cpp.o"
  "CMakeFiles/m3d_bench_common.dir/common.cpp.o.d"
  "libm3d_bench_common.a"
  "libm3d_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
