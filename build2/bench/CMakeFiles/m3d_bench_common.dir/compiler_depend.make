# Empty compiler generated dependencies file for m3d_bench_common.
# This may be replaced when dependencies are built.
