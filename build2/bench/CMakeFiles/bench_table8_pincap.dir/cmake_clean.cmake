file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_pincap.dir/bench_table8_pincap.cpp.o"
  "CMakeFiles/bench_table8_pincap.dir/bench_table8_pincap.cpp.o.d"
  "bench_table8_pincap"
  "bench_table8_pincap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_pincap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
