# Empty dependencies file for bench_table8_pincap.
# This may be replaced when dependencies are built.
