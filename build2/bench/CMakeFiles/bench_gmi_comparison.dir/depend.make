# Empty dependencies file for bench_gmi_comparison.
# This may be replaced when dependencies are built.
