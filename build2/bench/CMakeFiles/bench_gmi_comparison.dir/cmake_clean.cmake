file(REMOVE_RECURSE
  "CMakeFiles/bench_gmi_comparison.dir/bench_gmi_comparison.cpp.o"
  "CMakeFiles/bench_gmi_comparison.dir/bench_gmi_comparison.cpp.o.d"
  "bench_gmi_comparison"
  "bench_gmi_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmi_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
