file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_prior_work.dir/bench_table5_prior_work.cpp.o"
  "CMakeFiles/bench_table5_prior_work.dir/bench_table5_prior_work.cpp.o.d"
  "bench_table5_prior_work"
  "bench_table5_prior_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_prior_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
