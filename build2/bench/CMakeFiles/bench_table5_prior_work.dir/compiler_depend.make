# Empty compiler generated dependencies file for bench_table5_prior_work.
# This may be replaced when dependencies are built.
