file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cell_rc.dir/bench_table1_cell_rc.cpp.o"
  "CMakeFiles/bench_table1_cell_rc.dir/bench_table1_cell_rc.cpp.o.d"
  "bench_table1_cell_rc"
  "bench_table1_cell_rc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cell_rc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
