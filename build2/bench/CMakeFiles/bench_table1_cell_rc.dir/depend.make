# Empty dependencies file for bench_table1_cell_rc.
# This may be replaced when dependencies are built.
