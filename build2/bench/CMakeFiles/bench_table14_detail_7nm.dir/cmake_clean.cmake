file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_detail_7nm.dir/bench_table14_detail_7nm.cpp.o"
  "CMakeFiles/bench_table14_detail_7nm.dir/bench_table14_detail_7nm.cpp.o.d"
  "bench_table14_detail_7nm"
  "bench_table14_detail_7nm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_detail_7nm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
