# Empty dependencies file for bench_table14_detail_7nm.
# This may be replaced when dependencies are built.
