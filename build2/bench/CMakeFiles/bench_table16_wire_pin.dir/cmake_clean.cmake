file(REMOVE_RECURSE
  "CMakeFiles/bench_table16_wire_pin.dir/bench_table16_wire_pin.cpp.o"
  "CMakeFiles/bench_table16_wire_pin.dir/bench_table16_wire_pin.cpp.o.d"
  "bench_table16_wire_pin"
  "bench_table16_wire_pin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table16_wire_pin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
