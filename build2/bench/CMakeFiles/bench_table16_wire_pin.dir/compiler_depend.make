# Empty compiler generated dependencies file for bench_table16_wire_pin.
# This may be replaced when dependencies are built.
