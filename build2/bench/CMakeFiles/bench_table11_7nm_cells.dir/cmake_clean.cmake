file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_7nm_cells.dir/bench_table11_7nm_cells.cpp.o"
  "CMakeFiles/bench_table11_7nm_cells.dir/bench_table11_7nm_cells.cpp.o.d"
  "bench_table11_7nm_cells"
  "bench_table11_7nm_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_7nm_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
