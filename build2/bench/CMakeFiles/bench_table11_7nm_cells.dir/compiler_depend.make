# Empty compiler generated dependencies file for bench_table11_7nm_cells.
# This may be replaced when dependencies are built.
