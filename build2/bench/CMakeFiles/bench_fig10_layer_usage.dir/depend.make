# Empty dependencies file for bench_fig10_layer_usage.
# This may be replaced when dependencies are built.
