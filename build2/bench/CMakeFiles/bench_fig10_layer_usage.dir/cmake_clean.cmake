file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_layer_usage.dir/bench_fig10_layer_usage.cpp.o"
  "CMakeFiles/bench_fig10_layer_usage.dir/bench_fig10_layer_usage.cpp.o.d"
  "bench_fig10_layer_usage"
  "bench_fig10_layer_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_layer_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
