# Empty compiler generated dependencies file for bench_table3_metal_stack.
# This may be replaced when dependencies are built.
