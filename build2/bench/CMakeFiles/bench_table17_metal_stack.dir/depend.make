# Empty dependencies file for bench_table17_metal_stack.
# This may be replaced when dependencies are built.
