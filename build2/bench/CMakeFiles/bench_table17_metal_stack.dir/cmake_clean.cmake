file(REMOVE_RECURSE
  "CMakeFiles/bench_table17_metal_stack.dir/bench_table17_metal_stack.cpp.o"
  "CMakeFiles/bench_table17_metal_stack.dir/bench_table17_metal_stack.cpp.o.d"
  "bench_table17_metal_stack"
  "bench_table17_metal_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table17_metal_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
