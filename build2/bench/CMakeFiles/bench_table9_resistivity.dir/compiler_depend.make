# Empty compiler generated dependencies file for bench_table9_resistivity.
# This may be replaced when dependencies are built.
