file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_resistivity.dir/bench_table9_resistivity.cpp.o"
  "CMakeFiles/bench_table9_resistivity.dir/bench_table9_resistivity.cpp.o.d"
  "bench_table9_resistivity"
  "bench_table9_resistivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_resistivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
