# Empty compiler generated dependencies file for bench_fig11_switching.
# This may be replaced when dependencies are built.
