file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_switching.dir/bench_fig11_switching.cpp.o"
  "CMakeFiles/bench_fig11_switching.dir/bench_fig11_switching.cpp.o.d"
  "bench_fig11_switching"
  "bench_fig11_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
