# Empty dependencies file for bench_table7_7nm.
# This may be replaced when dependencies are built.
