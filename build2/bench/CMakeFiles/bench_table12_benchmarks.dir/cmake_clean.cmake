file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_benchmarks.dir/bench_table12_benchmarks.cpp.o"
  "CMakeFiles/bench_table12_benchmarks.dir/bench_table12_benchmarks.cpp.o.d"
  "bench_table12_benchmarks"
  "bench_table12_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
