# Empty compiler generated dependencies file for bench_table12_benchmarks.
# This may be replaced when dependencies are built.
