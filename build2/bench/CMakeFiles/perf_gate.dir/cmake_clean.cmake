file(REMOVE_RECURSE
  "CMakeFiles/perf_gate.dir/perf_gate.cpp.o"
  "CMakeFiles/perf_gate.dir/perf_gate.cpp.o.d"
  "perf_gate"
  "perf_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
