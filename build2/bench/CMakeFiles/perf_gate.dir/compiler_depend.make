# Empty compiler generated dependencies file for perf_gate.
# This may be replaced when dependencies are built.
