file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_snapshots.dir/bench_fig3_snapshots.cpp.o"
  "CMakeFiles/bench_fig3_snapshots.dir/bench_fig3_snapshots.cpp.o.d"
  "bench_fig3_snapshots"
  "bench_fig3_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
