# Empty dependencies file for bench_fig3_snapshots.
# This may be replaced when dependencies are built.
