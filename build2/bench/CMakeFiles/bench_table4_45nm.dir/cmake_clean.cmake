file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_45nm.dir/bench_table4_45nm.cpp.o"
  "CMakeFiles/bench_table4_45nm.dir/bench_table4_45nm.cpp.o.d"
  "bench_table4_45nm"
  "bench_table4_45nm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_45nm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
