# Empty dependencies file for bench_table4_45nm.
# This may be replaced when dependencies are built.
