# Empty dependencies file for bench_fig4_clock_sweep.
# This may be replaced when dependencies are built.
