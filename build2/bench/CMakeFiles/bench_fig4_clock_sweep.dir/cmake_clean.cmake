file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_clock_sweep.dir/bench_fig4_clock_sweep.cpp.o"
  "CMakeFiles/bench_fig4_clock_sweep.dir/bench_fig4_clock_sweep.cpp.o.d"
  "bench_fig4_clock_sweep"
  "bench_fig4_clock_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_clock_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
