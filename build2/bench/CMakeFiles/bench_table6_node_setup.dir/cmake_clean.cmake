file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_node_setup.dir/bench_table6_node_setup.cpp.o"
  "CMakeFiles/bench_table6_node_setup.dir/bench_table6_node_setup.cpp.o.d"
  "bench_table6_node_setup"
  "bench_table6_node_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_node_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
