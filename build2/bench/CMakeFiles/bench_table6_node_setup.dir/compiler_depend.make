# Empty compiler generated dependencies file for bench_table6_node_setup.
# This may be replaced when dependencies are built.
