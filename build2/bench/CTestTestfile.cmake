# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build2/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[perf.flow_gate]=] "/root/repo/build2/bench/perf_gate" "--baseline" "/root/repo/BENCH_flow.json" "--out" "/root/repo/build2/BENCH_flow.json")
set_tests_properties([=[perf.flow_gate]=] PROPERTIES  LABELS "perf" RUN_SERIAL "ON" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;46;add_test;/root/repo/bench/CMakeLists.txt;0;")
