file(REMOVE_RECURSE
  "CMakeFiles/clock_sweep.dir/clock_sweep.cpp.o"
  "CMakeFiles/clock_sweep.dir/clock_sweep.cpp.o.d"
  "clock_sweep"
  "clock_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
