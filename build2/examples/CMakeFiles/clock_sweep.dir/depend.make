# Empty dependencies file for clock_sweep.
# This may be replaced when dependencies are built.
