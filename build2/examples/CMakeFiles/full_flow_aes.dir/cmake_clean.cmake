file(REMOVE_RECURSE
  "CMakeFiles/full_flow_aes.dir/full_flow_aes.cpp.o"
  "CMakeFiles/full_flow_aes.dir/full_flow_aes.cpp.o.d"
  "full_flow_aes"
  "full_flow_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_flow_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
