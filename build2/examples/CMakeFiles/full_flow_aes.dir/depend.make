# Empty dependencies file for full_flow_aes.
# This may be replaced when dependencies are built.
