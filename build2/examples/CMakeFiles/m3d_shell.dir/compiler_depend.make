# Empty compiler generated dependencies file for m3d_shell.
# This may be replaced when dependencies are built.
