file(REMOVE_RECURSE
  "CMakeFiles/m3d_shell.dir/m3d_shell.cpp.o"
  "CMakeFiles/m3d_shell.dir/m3d_shell.cpp.o.d"
  "m3d_shell"
  "m3d_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
