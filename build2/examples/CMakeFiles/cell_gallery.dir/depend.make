# Empty dependencies file for cell_gallery.
# This may be replaced when dependencies are built.
