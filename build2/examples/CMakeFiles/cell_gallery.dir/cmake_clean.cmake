file(REMOVE_RECURSE
  "CMakeFiles/cell_gallery.dir/cell_gallery.cpp.o"
  "CMakeFiles/cell_gallery.dir/cell_gallery.cpp.o.d"
  "cell_gallery"
  "cell_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
