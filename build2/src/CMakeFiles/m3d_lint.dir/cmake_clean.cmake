file(REMOVE_RECURSE
  "CMakeFiles/m3d_lint.dir/lint/main.cpp.o"
  "CMakeFiles/m3d_lint.dir/lint/main.cpp.o.d"
  "m3d_lint"
  "m3d_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
