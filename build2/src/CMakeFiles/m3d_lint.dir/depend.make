# Empty dependencies file for m3d_lint.
# This may be replaced when dependencies are built.
