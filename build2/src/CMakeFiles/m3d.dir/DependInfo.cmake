
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/drc.cpp" "src/CMakeFiles/m3d.dir/cells/drc.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/cells/drc.cpp.o.d"
  "/root/repo/src/cells/func.cpp" "src/CMakeFiles/m3d.dir/cells/func.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/cells/func.cpp.o.d"
  "/root/repo/src/cells/gds.cpp" "src/CMakeFiles/m3d.dir/cells/gds.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/cells/gds.cpp.o.d"
  "/root/repo/src/cells/layout.cpp" "src/CMakeFiles/m3d.dir/cells/layout.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/cells/layout.cpp.o.d"
  "/root/repo/src/cells/spec.cpp" "src/CMakeFiles/m3d.dir/cells/spec.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/cells/spec.cpp.o.d"
  "/root/repo/src/check/check.cpp" "src/CMakeFiles/m3d.dir/check/check.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/check/check.cpp.o.d"
  "/root/repo/src/check/golden.cpp" "src/CMakeFiles/m3d.dir/check/golden.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/check/golden.cpp.o.d"
  "/root/repo/src/circuit/index.cpp" "src/CMakeFiles/m3d.dir/circuit/index.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/circuit/index.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/m3d.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/verilog.cpp" "src/CMakeFiles/m3d.dir/circuit/verilog.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/circuit/verilog.cpp.o.d"
  "/root/repo/src/cts/cts.cpp" "src/CMakeFiles/m3d.dir/cts/cts.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/cts/cts.cpp.o.d"
  "/root/repo/src/exec/exec.cpp" "src/CMakeFiles/m3d.dir/exec/exec.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/exec/exec.cpp.o.d"
  "/root/repo/src/extract/extract.cpp" "src/CMakeFiles/m3d.dir/extract/extract.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/extract/extract.cpp.o.d"
  "/root/repo/src/flow/flow.cpp" "src/CMakeFiles/m3d.dir/flow/flow.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/flow/flow.cpp.o.d"
  "/root/repo/src/flow/report.cpp" "src/CMakeFiles/m3d.dir/flow/report.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/flow/report.cpp.o.d"
  "/root/repo/src/gen/aes.cpp" "src/CMakeFiles/m3d.dir/gen/aes.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gen/aes.cpp.o.d"
  "/root/repo/src/gen/builder.cpp" "src/CMakeFiles/m3d.dir/gen/builder.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gen/builder.cpp.o.d"
  "/root/repo/src/gen/des.cpp" "src/CMakeFiles/m3d.dir/gen/des.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gen/des.cpp.o.d"
  "/root/repo/src/gen/fpu.cpp" "src/CMakeFiles/m3d.dir/gen/fpu.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gen/fpu.cpp.o.d"
  "/root/repo/src/gen/gen.cpp" "src/CMakeFiles/m3d.dir/gen/gen.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gen/gen.cpp.o.d"
  "/root/repo/src/gen/ldpc.cpp" "src/CMakeFiles/m3d.dir/gen/ldpc.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gen/ldpc.cpp.o.d"
  "/root/repo/src/gen/mult.cpp" "src/CMakeFiles/m3d.dir/gen/mult.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gen/mult.cpp.o.d"
  "/root/repo/src/gen/random_logic.cpp" "src/CMakeFiles/m3d.dir/gen/random_logic.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gen/random_logic.cpp.o.d"
  "/root/repo/src/gmi/gmi.cpp" "src/CMakeFiles/m3d.dir/gmi/gmi.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gmi/gmi.cpp.o.d"
  "/root/repo/src/gmi/partition.cpp" "src/CMakeFiles/m3d.dir/gmi/partition.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/gmi/partition.cpp.o.d"
  "/root/repo/src/liberty/characterize.cpp" "src/CMakeFiles/m3d.dir/liberty/characterize.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/liberty/characterize.cpp.o.d"
  "/root/repo/src/liberty/io.cpp" "src/CMakeFiles/m3d.dir/liberty/io.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/liberty/io.cpp.o.d"
  "/root/repo/src/liberty/liberty_writer.cpp" "src/CMakeFiles/m3d.dir/liberty/liberty_writer.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/liberty/liberty_writer.cpp.o.d"
  "/root/repo/src/liberty/library.cpp" "src/CMakeFiles/m3d.dir/liberty/library.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/liberty/library.cpp.o.d"
  "/root/repo/src/lint/lint.cpp" "src/CMakeFiles/m3d.dir/lint/lint.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/lint/lint.cpp.o.d"
  "/root/repo/src/obs/export.cpp" "src/CMakeFiles/m3d.dir/obs/export.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/obs/export.cpp.o.d"
  "/root/repo/src/obs/mem.cpp" "src/CMakeFiles/m3d.dir/obs/mem.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/obs/mem.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/CMakeFiles/m3d.dir/obs/trace.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/obs/trace.cpp.o.d"
  "/root/repo/src/opt/opt.cpp" "src/CMakeFiles/m3d.dir/opt/opt.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/opt/opt.cpp.o.d"
  "/root/repo/src/place/def.cpp" "src/CMakeFiles/m3d.dir/place/def.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/place/def.cpp.o.d"
  "/root/repo/src/place/hpwl.cpp" "src/CMakeFiles/m3d.dir/place/hpwl.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/place/hpwl.cpp.o.d"
  "/root/repo/src/place/place.cpp" "src/CMakeFiles/m3d.dir/place/place.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/place/place.cpp.o.d"
  "/root/repo/src/power/power.cpp" "src/CMakeFiles/m3d.dir/power/power.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/power/power.cpp.o.d"
  "/root/repo/src/route/route.cpp" "src/CMakeFiles/m3d.dir/route/route.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/route/route.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/CMakeFiles/m3d.dir/spice/circuit.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/spice/circuit.cpp.o.d"
  "/root/repo/src/spice/mosfet.cpp" "src/CMakeFiles/m3d.dir/spice/mosfet.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/spice/mosfet.cpp.o.d"
  "/root/repo/src/spice/sim.cpp" "src/CMakeFiles/m3d.dir/spice/sim.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/spice/sim.cpp.o.d"
  "/root/repo/src/sta/paths.cpp" "src/CMakeFiles/m3d.dir/sta/paths.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/sta/paths.cpp.o.d"
  "/root/repo/src/sta/sta.cpp" "src/CMakeFiles/m3d.dir/sta/sta.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/sta/sta.cpp.o.d"
  "/root/repo/src/synth/synth.cpp" "src/CMakeFiles/m3d.dir/synth/synth.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/synth/synth.cpp.o.d"
  "/root/repo/src/synth/wlm.cpp" "src/CMakeFiles/m3d.dir/synth/wlm.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/synth/wlm.cpp.o.d"
  "/root/repo/src/tech/tech.cpp" "src/CMakeFiles/m3d.dir/tech/tech.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/tech/tech.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/m3d.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/util/json.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/m3d.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/util/log.cpp.o.d"
  "/root/repo/src/util/metrics.cpp" "src/CMakeFiles/m3d.dir/util/metrics.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/util/metrics.cpp.o.d"
  "/root/repo/src/util/svg.cpp" "src/CMakeFiles/m3d.dir/util/svg.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/util/svg.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/m3d.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/util/table.cpp.o.d"
  "/root/repo/src/util/trace.cpp" "src/CMakeFiles/m3d.dir/util/trace.cpp.o" "gcc" "src/CMakeFiles/m3d.dir/util/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
