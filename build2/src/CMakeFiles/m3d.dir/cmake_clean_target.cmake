file(REMOVE_RECURSE
  "libm3d.a"
)
