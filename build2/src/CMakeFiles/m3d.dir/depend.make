# Empty dependencies file for m3d.
# This may be replaced when dependencies are built.
