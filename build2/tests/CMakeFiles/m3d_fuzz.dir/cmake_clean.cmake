file(REMOVE_RECURSE
  "CMakeFiles/m3d_fuzz.dir/test_fuzz_flow.cpp.o"
  "CMakeFiles/m3d_fuzz.dir/test_fuzz_flow.cpp.o.d"
  "m3d_fuzz"
  "m3d_fuzz.pdb"
  "m3d_fuzz[1]_tests.cmake"
  "m3d_fuzz[2]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
