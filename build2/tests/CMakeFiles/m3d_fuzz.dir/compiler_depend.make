# Empty compiler generated dependencies file for m3d_fuzz.
# This may be replaced when dependencies are built.
