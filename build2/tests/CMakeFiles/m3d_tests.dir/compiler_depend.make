# Empty compiler generated dependencies file for m3d_tests.
# This may be replaced when dependencies are built.
