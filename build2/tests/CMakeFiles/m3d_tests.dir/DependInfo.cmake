
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cells.cpp" "tests/CMakeFiles/m3d_tests.dir/test_cells.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_cells.cpp.o.d"
  "/root/repo/tests/test_check.cpp" "tests/CMakeFiles/m3d_tests.dir/test_check.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_check.cpp.o.d"
  "/root/repo/tests/test_cts.cpp" "tests/CMakeFiles/m3d_tests.dir/test_cts.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_cts.cpp.o.d"
  "/root/repo/tests/test_exec.cpp" "tests/CMakeFiles/m3d_tests.dir/test_exec.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_exec.cpp.o.d"
  "/root/repo/tests/test_flow.cpp" "tests/CMakeFiles/m3d_tests.dir/test_flow.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_flow.cpp.o.d"
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/m3d_tests.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_gen.cpp.o.d"
  "/root/repo/tests/test_geom.cpp" "tests/CMakeFiles/m3d_tests.dir/test_geom.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_geom.cpp.o.d"
  "/root/repo/tests/test_gmi.cpp" "tests/CMakeFiles/m3d_tests.dir/test_gmi.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_gmi.cpp.o.d"
  "/root/repo/tests/test_golden.cpp" "tests/CMakeFiles/m3d_tests.dir/test_golden.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_golden.cpp.o.d"
  "/root/repo/tests/test_hpwl.cpp" "tests/CMakeFiles/m3d_tests.dir/test_hpwl.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_hpwl.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/m3d_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_liberty.cpp" "tests/CMakeFiles/m3d_tests.dir/test_liberty.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_liberty.cpp.o.d"
  "/root/repo/tests/test_lint.cpp" "tests/CMakeFiles/m3d_tests.dir/test_lint.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_lint.cpp.o.d"
  "/root/repo/tests/test_more_props.cpp" "tests/CMakeFiles/m3d_tests.dir/test_more_props.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_more_props.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/m3d_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_obs.cpp" "tests/CMakeFiles/m3d_tests.dir/test_obs.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_obs.cpp.o.d"
  "/root/repo/tests/test_paths_drc.cpp" "tests/CMakeFiles/m3d_tests.dir/test_paths_drc.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_paths_drc.cpp.o.d"
  "/root/repo/tests/test_place_route.cpp" "tests/CMakeFiles/m3d_tests.dir/test_place_route.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_place_route.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/m3d_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/m3d_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_spice.cpp" "tests/CMakeFiles/m3d_tests.dir/test_spice.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_spice.cpp.o.d"
  "/root/repo/tests/test_sta_power.cpp" "tests/CMakeFiles/m3d_tests.dir/test_sta_power.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_sta_power.cpp.o.d"
  "/root/repo/tests/test_synth_opt.cpp" "tests/CMakeFiles/m3d_tests.dir/test_synth_opt.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_synth_opt.cpp.o.d"
  "/root/repo/tests/test_tech.cpp" "tests/CMakeFiles/m3d_tests.dir/test_tech.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_tech.cpp.o.d"
  "/root/repo/tests/test_trace_metrics.cpp" "tests/CMakeFiles/m3d_tests.dir/test_trace_metrics.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_trace_metrics.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/m3d_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/m3d.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
