# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/m3d_tests[1]_include.cmake")
include("/root/repo/build2/tests/m3d_fuzz[1]_include.cmake")
include("/root/repo/build2/tests/m3d_fuzz[2]_include.cmake")
add_test([=[lint.tree]=] "/root/repo/build2/src/m3d_lint" "/root/repo/src" "/root/repo/tests")
set_tests_properties([=[lint.tree]=] PROPERTIES  LABELS "tier1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;54;add_test;/root/repo/tests/CMakeLists.txt;0;")
