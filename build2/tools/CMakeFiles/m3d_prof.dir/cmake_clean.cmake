file(REMOVE_RECURSE
  "CMakeFiles/m3d_prof.dir/m3d_prof.cpp.o"
  "CMakeFiles/m3d_prof.dir/m3d_prof.cpp.o.d"
  "m3d_prof"
  "m3d_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
