# Empty dependencies file for m3d_prof.
# This may be replaced when dependencies are built.
